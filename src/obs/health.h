// Observability: the deployment-side health watchdog (DESIGN.md §8).
//
// Servers expose raw signals through the introspection endpoint
// (PROTOCOL.md §13); this module turns a stream of those per-server
// samples into an operator answer: which servers are unhealthy, why, and
// how close the deployment is to exceeding its fault budget `b`.
//
// The monitor is deliberately passive — it never talks to a transport
// (obs sits below net in the layering) and owns no timer. A driver
// (`net::IntrospectScraper` under a chaos runner, an operator loop in a
// real deployment) calls `begin_round(now)`, feeds one
// `observe(server, sample-or-timeout)` per server, then `end_round()`,
// which evaluates the declarative SLO rules with hysteresis:
//
//   * a server flips unhealthy only after `unhealthy_after` consecutive
//     bad rounds, and back only after `healthy_after` consecutive good
//     rounds — a single blip can never flap the verdict;
//   * an observed uptime regression means the server restarted (the one
//     signal even a Byzantine flip cannot hide, because fault injection
//     restarts the process); it pins the server bad for `restart_hold_us`
//     so post-restart state is not trusted instantly.
//
// Cluster verdict: green when every server is healthy, degraded while
// every shard group still tolerates its unhealthy count (u ≤ b), critical
// once any group's unhealthy count exceeds b — the paper's availability
// bound is gone. `quorum_margin` is min over groups of (b − u): how many
// more failures until critical.
//
// Every transition emits `health.*` metrics and (when the event log is
// on) `health.mark_*`/`health.verdict_change` instants; the chaos
// harness subscribes to the same transitions to score detection latency
// against injected ground truth (src/testkit/health_scorer.h).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"

namespace securestore::obs {

/// One server's answer to a status introspect (PROTOCOL.md §13): the raw
/// signals the watchdog's rules consume. Counters are since-boot, so the
/// monitor differences consecutive samples itself (and an uptime that
/// moved backwards exposes the reset).
struct ServerSample {
  std::uint32_t node = 0;           // responding NodeId
  std::uint32_t shard = 0;          // shard/group id (0 unsharded)
  std::uint64_t now_us = 0;         // server transport clock at assembly
  std::uint64_t uptime_us = 0;      // since server construction/restart
  std::uint64_t ring_version = 0;   // routing ring version (sharded)
  std::uint64_t gossip_ticks = 0;   // anti-entropy rounds since boot
  std::uint64_t gossip_idle_us = 0; // time since the last gossip tick
  double wal_append_ewma_us = 0;    // admission's smoothed append cost
  double wal_append_p99_us = 0;     // this server's local append p99
  std::uint64_t compaction_lag = 0; // storage engine pressure (LSM)
  std::uint64_t memtable_bytes = 0;
  std::uint64_t requests = 0;       // requests dispatched since boot
  std::uint64_t shed = 0;           // requests shed since boot
  std::uint64_t net_backlog = 0;    // transport receive backlog
  std::uint64_t hold_depth = 0;     // open per-object holds
  bool overloaded = false;          // admission latch currently tripped
};

enum class Verdict : std::uint8_t {
  kGreen = 0,     // every server healthy
  kDegraded = 1,  // unhealthy servers present, every group still ≤ b
  kCritical = 2,  // some group's unhealthy count exceeds b
};

const char* verdict_name(Verdict verdict);

/// Declarative SLO rules (the DESIGN.md §8 table). A sample breaching any
/// threshold makes the round "bad"; hysteresis turns runs of bad rounds
/// into state. Thresholds are deliberately loose — the chaos oracle
/// treats an unhealthy mark outside a fault window as a violation, so a
/// rule that fires on healthy jitter is a bug, not vigilance.
struct SloRules {
  std::uint32_t unhealthy_after = 2;     // consecutive bad rounds to mark
  std::uint32_t healthy_after = 2;       // consecutive good rounds to clear
  std::uint64_t gossip_stale_us = 2'000'000;
  double wal_p99_us = 50'000;            // wall-clock append tail
  std::uint64_t compaction_lag = 16;     // engine pressure units
  double shed_fraction = 0.05;           // shed/dispatched over one round
  std::uint64_t net_backlog = 256;       // queued inbound messages
  std::uint64_t restart_hold_us = 400'000;
};

class HealthMonitor {
 public:
  /// Identity of one monitored server: transport NodeId plus the shard
  /// group whose fault budget it counts against (0 when unsharded).
  struct ServerInfo {
    std::uint32_t node = 0;
    std::uint32_t group = 0;
  };

  struct Options {
    SloRules rules;
    std::uint32_t b = 1;  // per-group fault budget (paper's b)
  };

  /// Queryable per-server watchdog state.
  struct ServerState {
    bool healthy = true;
    std::uint32_t consecutive_bad = 0;
    std::uint32_t consecutive_good = 0;
    std::vector<std::string> causes;   // breached rules from the last round
    std::optional<ServerSample> last;  // last successful sample
    std::uint64_t restart_hold_until_us = 0;
    std::uint64_t scrapes = 0;   // successful samples observed
    std::uint64_t failures = 0;  // rounds with no sample (timeout)
  };

  using MarkFn = std::function<void(std::uint32_t server_index, bool healthy,
                                    std::uint64_t at_us,
                                    const std::vector<std::string>& causes)>;
  using VerdictFn = std::function<void(Verdict verdict, std::uint64_t at_us)>;

  /// `events` may be null (no event emission). `servers[i]` describes the
  /// server fed as `observe(i, ...)`.
  HealthMonitor(Registry& registry, EventLog* events, std::vector<ServerInfo> servers,
                Options options);

  /// Transition subscriptions (the chaos scorer): invoked from end_round.
  void set_on_mark(MarkFn fn) { on_mark_ = std::move(fn); }
  void set_on_verdict(VerdictFn fn) { on_verdict_ = std::move(fn); }

  /// One scrape round: begin with the monitor-side clock, observe every
  /// server (nullopt = scrape timed out), end to evaluate rules,
  /// hysteresis, and the cluster verdict.
  void begin_round(std::uint64_t now_us);
  void observe(std::size_t server_index, std::optional<ServerSample> sample);
  void end_round();

  std::size_t server_count() const { return servers_.size(); }
  const ServerState& server(std::size_t i) const { return state_[i]; }
  Verdict verdict() const { return verdict_; }
  /// min over groups of (b − unhealthy); negative once critical.
  std::int64_t quorum_margin() const { return margin_; }
  std::uint32_t unhealthy_in_group(std::uint32_t group) const;
  std::uint64_t rounds() const { return rounds_; }
  const Options& options() const { return options_; }

 private:
  void evaluate(std::size_t i);
  void emit_instant(std::uint32_t node, std::string_view name);

  const std::vector<ServerInfo> servers_;
  const Options options_;
  EventLog* events_;

  Counter& scrapes_;
  Counter& scrape_failures_;
  Counter& state_changes_;
  Gauge& verdict_gauge_;
  Gauge& unhealthy_gauge_;
  Gauge& margin_gauge_;

  std::vector<ServerState> state_;
  std::vector<std::optional<ServerSample>> pending_;  // staged this round
  std::vector<bool> observed_;
  std::uint64_t now_us_ = 0;
  std::uint64_t rounds_ = 0;
  bool in_round_ = false;

  std::uint32_t group_count_ = 1;
  std::vector<std::uint32_t> group_unhealthy_;
  Verdict verdict_ = Verdict::kGreen;
  std::int64_t margin_ = 0;

  MarkFn on_mark_;
  VerdictFn on_verdict_;
};

}  // namespace securestore::obs
