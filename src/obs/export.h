// Observability: exporters (DESIGN.md §8).
//
// Render targets for a `MetricsSnapshot`:
//   * `to_text`  — the human dump benches print on completion and operators
//     read in a terminal;
//   * `to_json`  — the machine dump, shaped exactly like the `BENCH_*.json`
//     sidecars (`{"bench": <name>, "rows": [...]}`): one row per metric,
//     histograms carrying count/mean/quantiles plus the raw bucket counts
//     and sum, so external tooling can re-aggregate distributions across
//     servers (quantiles of merged histograms, not merges of quantiles);
//   * `to_prometheus` — the scrape format the introspection endpoint
//     serves (PROTOCOL.md §13): dotted names escaped to the Prometheus
//     charset, the `{shard=N}` suffix sharded deployments append converted
//     into a proper `shard="N"` label, histograms exposed as cumulative
//     `_bucket{le=...}` series plus `_sum`/`_count`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"

namespace securestore::obs {

/// Name-sorted, one metric per line. Histograms with zero observations are
/// skipped (a registry accumulates names for code paths that never ran);
/// populated ones carry sum and their non-empty raw buckets on a
/// continuation line.
std::string to_text(const MetricsSnapshot& snapshot);

/// BENCH-sidecar-shaped JSON; `name` fills the "bench" field. Rows carry a
/// "kind" of counter/gauge/histogram; histogram rows additionally carry
/// "sum_us", "bounds" and "bucket_counts" (bounds.size()+1, overflow last).
std::string to_json(const MetricsSnapshot& snapshot, std::string_view name);

/// Writes `to_json` to `BENCH_<name>.json` in the working directory (the
/// sidecar convention). Returns false if the file could not be written.
bool write_json_sidecar(const MetricsSnapshot& snapshot, std::string_view name);

/// Splits the `{shard=N}` suffix sharded deployments append to metric
/// names (DESIGN.md §11): returns the base name and the shard id, or
/// nullopt shard when the name carries no suffix.
std::pair<std::string, std::optional<std::uint32_t>> split_shard_suffix(
    std::string_view name);

/// Prometheus-safe metric name for a (suffix-free) dotted base name: every
/// character outside [a-zA-Z0-9_:] becomes `_`, and a leading digit gains
/// a `_` prefix, so the result always matches the exposition-format name
/// grammar [a-zA-Z_:][a-zA-Z0-9_:]*. The mapping must stay injective over
/// the DESIGN.md §8 catalog — the obs suite's round-trip conformance test
/// enforces that.
std::string prometheus_name(std::string_view base);

/// Prometheus text exposition format (text/plain; version=0.0.4). Series
/// that differ only in their shard suffix fold into one metric family with
/// a `shard` label; histograms emit cumulative `_bucket{le="..."}` rows,
/// `le="+Inf"`, `_sum` and `_count`. Empty histograms are skipped like in
/// `to_text`.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Renders an event-log snapshot as Chrome-trace-event JSON (the
/// `{"traceEvents": [...]}` object format) loadable by Perfetto and
/// chrome://tracing. Spans become "X" complete events and instants "i"
/// events; pid/tid carry the emitting node, and args carry trace/span ids
/// (as hex strings) so one client operation stitches across nodes by
/// trace id. A process_name metadata record labels each node's track.
std::string to_chrome_trace(const std::vector<Event>& events);

/// Writes `to_chrome_trace` to `TRACE_<name>.json` next to the BENCH_*
/// sidecars. Returns false if the file could not be written.
bool write_trace_sidecar(const std::vector<Event>& events, std::string_view name);

}  // namespace securestore::obs
