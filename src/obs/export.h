// Observability: exporters (DESIGN.md §8).
//
// Two render targets for a `MetricsSnapshot`:
//   * `to_text`  — the human dump benches print on completion and operators
//     read in a terminal;
//   * `to_json`  — the machine dump, shaped exactly like the `BENCH_*.json`
//     sidecars (`{"bench": <name>, "rows": [...]}`): one row per metric,
//     histograms carrying count/mean/p50/p95/p99/max, so plot and CI-diff
//     tooling consumes bench tables and metrics dumps uniformly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"

namespace securestore::obs {

/// Name-sorted, one metric per line. Histograms with zero observations are
/// skipped (a registry accumulates names for code paths that never ran).
std::string to_text(const MetricsSnapshot& snapshot);

/// BENCH-sidecar-shaped JSON; `name` fills the "bench" field. Rows carry a
/// "kind" of counter/gauge/histogram.
std::string to_json(const MetricsSnapshot& snapshot, std::string_view name);

/// Writes `to_json` to `BENCH_<name>.json` in the working directory (the
/// sidecar convention). Returns false if the file could not be written.
bool write_json_sidecar(const MetricsSnapshot& snapshot, std::string_view name);

/// Renders an event-log snapshot as Chrome-trace-event JSON (the
/// `{"traceEvents": [...]}` object format) loadable by Perfetto and
/// chrome://tracing. Spans become "X" complete events and instants "i"
/// events; pid/tid carry the emitting node, and args carry trace/span ids
/// (as hex strings) so one client operation stitches across nodes by
/// trace id. A process_name metadata record labels each node's track.
std::string to_chrome_trace(const std::vector<Event>& events);

/// Writes `to_chrome_trace` to `TRACE_<name>.json` next to the BENCH_*
/// sidecars. Returns false if the file could not be written.
bool write_trace_sidecar(const std::vector<Event>& events, std::string_view name);

}  // namespace securestore::obs
