#include "obs/trace.h"

#include <chrono>

namespace securestore::obs {

std::uint64_t wall_now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count());
}

OpTrace::OpTrace(Registry& registry, std::string op, ClockFn clock)
    : registry_(registry), op_(std::move(op)), clock_(std::move(clock)) {
  started_ = clock_();
  phase_started_ = started_;
}

OpTrace::~OpTrace() {
  if (!finished_) finish(false);
}

void OpTrace::attach_root(EventLog& events, std::uint32_t node) {
  events_ = &events;
  node_ = node;
  ctx_ = events.begin_root(started_);
}

void OpTrace::close_phase(std::uint64_t now) {
  if (current_phase_.empty()) return;
  const std::uint64_t elapsed = now - phase_started_;
  // Each phase segment becomes a child span at its actual position on the
  // timeline (totals below are the aggregate-histogram view of the same).
  if (events_ != nullptr && events_->want(ctx_)) {
    events_->span(node_, ctx_, op_ + "." + current_phase_, "phase", phase_started_, elapsed);
  }
  for (auto& [name, total] : phase_totals_us_) {
    if (name == current_phase_) {
      total += elapsed;
      return;
    }
  }
  phase_totals_us_.emplace_back(current_phase_, elapsed);
}

void OpTrace::phase(std::string_view name) {
  const std::uint64_t now = clock_();
  close_phase(now);
  current_phase_.assign(name);
  phase_started_ = now;
}

void OpTrace::add(std::string_view name, std::uint64_t n) {
  for (auto& [existing, total] : counts_) {
    if (existing == name) {
      total += n;
      return;
    }
  }
  counts_.emplace_back(std::string(name), n);
}

void OpTrace::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  const std::uint64_t now = clock_();
  close_phase(now);

  registry_.histogram(op_ + ".latency_us").observe(static_cast<double>(now - started_));
  for (const auto& [name, total] : phase_totals_us_) {
    registry_.histogram(op_ + "." + name + "_us").observe(static_cast<double>(total));
  }
  registry_.counter(op_ + ".ops").inc();
  if (!ok) registry_.counter(op_ + ".failures").inc();
  for (const auto& [name, total] : counts_) {
    registry_.counter(op_ + "." + name).inc(total);
  }

  // Root span last, under its own pre-allocated span id (children already
  // parented to it via ctx_ as they closed).
  if (events_ != nullptr && events_->want(ctx_)) {
    Event event;
    event.kind = EventKind::kSpan;
    event.node = node_;
    event.trace_id = ctx_.trace_id;
    event.span_id = ctx_.span_id;
    event.parent_span_id = 0;
    event.ts_us = started_;
    event.dur_us = now - started_;
    event.name = op_;
    event.category = ok ? "op" : "op.failed";
    events_->record(std::move(event));
  }
}

}  // namespace securestore::obs
