// Observability: the metrics registry (DESIGN.md §8).
//
// The store's perf story (§6 of the paper, and every optimization PR after
// this one) lives or dies on measured per-protocol costs, so the hot paths
// need instrumentation that is cheap enough to leave on. This module gives
// every deployment — simulated or real — one `Registry` of named metrics:
//
//   * `Counter`  — monotone event count (ops, retries, drops), relaxed
//     atomic increments, no locks on the hot path;
//   * `Gauge`    — instantaneous level (queue depth, bytes buffered);
//   * `Histogram`— fixed-bucket latency/size distribution with
//     p50/p95/p99 quantile *estimation* (linear interpolation inside the
//     bucket that holds the target rank, Prometheus-style).
//
// Registry lookups take a mutex; callers resolve their metric handles once
// (constructor time) and the references stay valid for the registry's
// lifetime, so steady-state updates are a single relaxed atomic op.
//
// Time base: histogram values are plain doubles — latency metrics record
// microseconds from whatever clock the caller uses. Protocol spans use the
// transport clock (virtual microseconds under the simulator, wall
// microseconds on the thread/TCP transports), so the same metric names mean
// the same thing in both worlds; disk I/O (WAL append/fsync) always uses
// the wall clock because the simulator does not model disks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace securestore::obs {

namespace detail {

/// Relaxed CAS-loop arithmetic on atomic doubles (fetch_add on
/// atomic<double> is formally C++20 but not worth depending on).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Ratchets upward: keeps the high-water mark of everything ever set.
  void record_max(std::int64_t v) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A frozen histogram: what `Histogram::snapshot()` and `MetricsSnapshot`
/// hand out. Quantiles are computed here so tests can feed known bucket
/// contents and assert exact answers.
struct HistogramSnapshot {
  std::vector<double> bounds;               // upper bucket bounds, ascending
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Quantile estimate for q in [0, 1]: find the bucket holding the q·count
  /// rank and interpolate linearly between its bounds (the first bucket's
  /// lower bound is 0). Ranks landing in the overflow bucket clamp to the
  /// observed max, and interpolated estimates never exceed it either — a
  /// p99 above every recorded value is a lie, not an approximation. Exact
  /// when every observation in the target bucket is uniformly spread — the
  /// usual fixed-bucket approximation.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

class Histogram {
 public:
  /// `bounds` are ascending upper bucket bounds; an implicit overflow
  /// bucket catches everything above the last. Defaults to latency buckets
  /// in microseconds spanning 1µs..100s.
  explicit Histogram(std::vector<double> bounds = default_latency_bounds_us());

  void observe(double value);
  std::uint64_t count() const;
  void reset();

  HistogramSnapshot snapshot() const;

  /// 1-2-5 decades from 1µs to 1e8µs (100 s): fine enough for sub-ms sim
  /// latencies and wide enough for WAN/disk wall-clock tails.
  static const std::vector<double>& default_latency_bounds_us();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
};

/// Everything a registry held at one instant. Maps are name-sorted, so
/// exporters print deterministically.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named metrics, one per deployment (each transport owns or shares one;
/// see net::Transport::registry()). Thread-safe: creation/lookup under a
/// mutex, updates lock-free on the returned handles, which stay valid for
/// the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates. A histogram's bounds are fixed by whoever creates it
  /// first; later callers get the existing instance regardless of `bounds`.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Lookup without creating (tests and exporters); nullptr when absent.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Pull-style sources (e.g. a transport folding its TransportStats into
  /// gauges): collectors run at the start of every snapshot(). Returns an
  /// id for remove_collector — mandatory before the source dies.
  std::uint64_t add_collector(std::function<void(Registry&)> collect);
  void remove_collector(std::uint64_t id);

  /// Runs collectors, then freezes every metric. Safe to call concurrently
  /// with updates (counts are relaxed-atomic reads).
  MetricsSnapshot snapshot();

  /// Zeroes counters/gauges and drops histogram contents (bounds kept).
  /// Handles stay valid. Benches use this between cells.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::uint64_t next_collector_id_ = 1;
  std::vector<std::pair<std::uint64_t, std::function<void(Registry&)>>> collectors_;
};

}  // namespace securestore::obs
