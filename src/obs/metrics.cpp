#include "obs/metrics.h"

#include <algorithm>

namespace securestore::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      if (i == bounds.size()) return max;  // overflow bucket: clamp
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double fraction = std::max(0.0, (target - cumulative) / in_bucket);
      // Interpolation pretends the bucket's observations spread uniformly
      // to its upper bound, so a narrow distribution high in a wide bucket
      // would report a quantile above anything ever recorded. Never
      // extrapolate past the observed max.
      return std::min(lower + (upper - lower) * fraction, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

const std::vector<double>& Histogram::default_latency_bounds_us() {
  static const std::vector<double> bounds = [] {
    std::vector<double> out;
    for (double decade = 1; decade <= 1e7; decade *= 10) {
      out.push_back(decade);
      out.push_back(decade * 2);
      out.push_back(decade * 5);
    }
    out.push_back(1e8);
    return out;
  }();
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t previous = count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  if (previous == 0) {
    // First observation seeds min; racing observers fix it up below.
    double expected = 0;
    min_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  detail::atomic_min(min_, value);
  detail::atomic_max(max_, value);
}

std::uint64_t Histogram::count() const { return count_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.reserve(buckets_.size());
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    const std::uint64_t n = bucket.load(std::memory_order_relaxed);
    snap.bucket_counts.push_back(n);
    total += n;
  }
  // Count derives from the buckets so the snapshot is internally
  // consistent even when racing concurrent observers.
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_latency_bounds_us());
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::uint64_t Registry::add_collector(std::function<void(Registry&)> collect) {
  std::lock_guard lock(mutex_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collect));
  return id;
}

void Registry::remove_collector(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  std::erase_if(collectors_, [id](const auto& entry) { return entry.first == id; });
}

MetricsSnapshot Registry::snapshot() {
  // Collectors call back into counter()/gauge(), so run them outside the
  // lock on a copy of the list.
  std::vector<std::function<void(Registry&)>> collectors;
  {
    std::lock_guard lock(mutex_);
    collectors.reserve(collectors_.size());
    for (const auto& [id, collect] : collectors_) collectors.push_back(collect);
  }
  for (const auto& collect : collectors) collect(*this);

  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) snap.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) snap.gauges[name] = gauge->value();
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace securestore::obs
