// Observability: structured event log + trace context (DESIGN.md §8).
//
// The metrics registry answers "how much does each phase cost in
// aggregate"; this module answers "where did THIS operation's time go,
// across nodes". Two pieces:
//
//   * `TraceContext` — the compact context a client operation propagates
//     with every rpc it issues (trace id, parent span id, sampled bit,
//     origin timestamp). Servers parent their verify/apply/WAL spans to
//     it, and gossip records carry it onward, so one client write stitches
//     to the server work it caused on every node it reached.
//   * `EventLog` — a bounded ring of completed spans and instant events,
//     one per deployment (shared through `net::Transport::events()` the
//     same way the metrics registry is shared). Timestamps come from the
//     transport clock: virtual µs under the simulator, wall µs on the
//     thread/TCP transports — identical semantics to the registry.
//
// Hot-path cost: when tracing is off (the default), every record/span call
// is one relaxed atomic load. Sampling (1-in-N root spans) keeps the cost
// bounded when it is on; counters/histograms stay always-on regardless.
// Spans are recorded only at completion (one event with ts + dur), so a
// dropped or duplicated message can never leave a span half-open or close
// it twice — there is nothing to close.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/serial.h"

namespace securestore::obs {

/// The trace field carried in the rpc envelope (PROTOCOL.md §1). A default
/// constructed context is "no trace" (trace_id 0 is never allocated).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;    // the sender-side span downstream spans parent to
  std::uint8_t flags = 0;       // bit 0: sampled
  std::uint64_t origin_us = 0;  // transport-clock µs when the root span began

  static constexpr std::uint8_t kSampledFlag = 0x01;
  /// Serialized size of the v1 context (the only version so far).
  static constexpr std::size_t kWireSize = 25;
  /// Largest trace field a receiver accepts; anything longer is counted as
  /// malformed and stripped (bounds what a Byzantine peer can make us buffer).
  static constexpr std::size_t kMaxWireSize = 64;

  bool valid() const { return trace_id != 0; }
  bool sampled() const { return (flags & kSampledFlag) != 0; }

  void encode(Writer& w) const;
  /// Decodes the 25-byte v1 prefix; the caller handles (skips) any
  /// forward-compatibility suffix. Throws DecodeError when short.
  static TraceContext decode(Reader& r);

  bool operator==(const TraceContext&) const = default;
};

enum class EventKind : std::uint8_t {
  kSpan,     // complete span: ts + dur (Chrome "X")
  kInstant,  // point event, e.g. an injected fault (Chrome "i")
};

/// One recorded event. `node` is the NodeId that emitted it; `peer` is
/// meaningful only for link-scoped instants (the other end of the link).
struct Event {
  EventKind kind = EventKind::kSpan;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;  // spans only
  std::string name;
  std::string category;
};

/// Process-unique span/trace id; never returns 0. High bits are seeded from
/// entropy so ids from distinct processes (TCP deployments) do not collide.
std::uint64_t next_trace_id();

/// Bounded, lock-light event ring. Disabled by default: every recording
/// call then costs one relaxed atomic load and nothing else. When enabled,
/// pushes take a mutex (events are rare relative to metric updates — one
/// per span completion, not per message) and overwrite the oldest event
/// once the ring is full, counting what was lost.
class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Master switch. Off: recording calls are one relaxed load.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Root-span sampling: capture 1 in `n` client operations (n=1: all).
  void set_sample_every(std::uint32_t n);
  std::uint32_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }

  /// Root-span admission: allocates a fresh (trace, span) id pair with the
  /// sampled bit set, or returns an invalid context when the log is
  /// disabled or this operation loses the 1-in-N draw. `origin_us` is the
  /// transport-clock time the operation began.
  TraceContext begin_root(std::uint64_t origin_us);

  /// True when recording under `parent` would actually store an event —
  /// the guard callers use to skip clock reads and string building.
  bool want(const TraceContext& parent) const {
    return enabled() && parent.sampled();
  }

  /// Records a complete child span under `parent`; no-op unless want().
  void span(std::uint32_t node, const TraceContext& parent, std::string_view name,
            std::string_view category, std::uint64_t ts_us, std::uint64_t dur_us);

  /// Records an instant event. Parent is optional (fault instants have
  /// none); no-op when the log is disabled.
  void instant(std::uint32_t node, std::uint32_t peer, const TraceContext& parent,
               std::string_view name, std::string_view category, std::uint64_t ts_us);

  /// Full-control record (OpTrace emits its root span with its own ids).
  /// No-op when the log is disabled.
  void record(Event event);

  /// Oldest-first copy of the ring. Safe across threads.
  std::vector<Event> snapshot() const;

  /// Oldest-first copy of at most the newest `max_n` events — the bounded
  /// dump the introspection endpoint serves (PROTOCOL.md §13). Holds the
  /// ring mutex only for the copy, never blocking recorders longer than a
  /// `snapshot()` would; recorders racing the copy at worst land in the
  /// next dump.
  std::vector<Event> recent(std::size_t max_n) const;

  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::uint64_t> root_counter_{0};
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mutex_;
  std::vector<Event> ring_;    // ring_[.. next_) newest at next_-1 once wrapped
  std::size_t next_ = 0;       // insertion cursor
  bool wrapped_ = false;
};

}  // namespace securestore::obs
