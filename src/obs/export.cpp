#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace securestore::obs {

namespace {

void append_formatted(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_formatted(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  if (n > 0) out.append(buffer, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof buffer - 1));
}

}  // namespace

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    append_formatted(out, "counter    %-44s %12" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    append_formatted(out, "gauge      %-44s %12" PRId64 "\n", name.c_str(), value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    append_formatted(out,
                     "histogram  %-44s count=%" PRIu64
                     " mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
                     name.c_str(), h.count, h.mean(), h.p50(), h.p95(), h.p99(), h.max);
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot, std::string_view name) {
  std::string out = "{\n  \"bench\": \"";
  out.append(name);
  out += "\",\n  \"rows\": [\n";
  bool first = true;
  const auto row_start = [&](const char* kind, const std::string& metric) {
    if (!first) out += ",\n";
    first = false;
    append_formatted(out, "    {\"kind\": \"%s\", \"metric\": \"%s\"", kind, metric.c_str());
  };
  for (const auto& [metric, value] : snapshot.counters) {
    row_start("counter", metric);
    append_formatted(out, ", \"value\": %" PRIu64 "}", value);
  }
  for (const auto& [metric, value] : snapshot.gauges) {
    row_start("gauge", metric);
    append_formatted(out, ", \"value\": %" PRId64 "}", value);
  }
  for (const auto& [metric, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    row_start("histogram", metric);
    append_formatted(out,
                     ", \"count\": %" PRIu64
                     ", \"mean_us\": %.4f, \"p50_us\": %.4f, \"p95_us\": %.4f, "
                     "\"p99_us\": %.4f, \"max_us\": %.4f}",
                     h.count, h.mean(), h.p50(), h.p95(), h.p99(), h.max);
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_json_sidecar(const MetricsSnapshot& snapshot, std::string_view name) {
  const std::string path = "BENCH_" + std::string(name) + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string body = to_json(snapshot, name);
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  std::fclose(file);
  return ok;
}

}  // namespace securestore::obs
