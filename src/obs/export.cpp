#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <map>

namespace securestore::obs {

namespace {

void append_formatted(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_formatted(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  if (n > 0) out.append(buffer, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof buffer - 1));
}

void append_buckets_text(std::string& out, const HistogramSnapshot& h) {
  out += "           ";
  append_formatted(out, "  buckets");
  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
    if (h.bucket_counts[i] == 0) continue;
    if (i < h.bounds.size()) {
      append_formatted(out, " le=%g:%" PRIu64, h.bounds[i], h.bucket_counts[i]);
    } else {
      append_formatted(out, " le=+inf:%" PRIu64, h.bucket_counts[i]);
    }
  }
  out += "\n";
}

}  // namespace

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    append_formatted(out, "counter    %-44s %12" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    append_formatted(out, "gauge      %-44s %12" PRId64 "\n", name.c_str(), value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    append_formatted(out,
                     "histogram  %-44s count=%" PRIu64
                     " sum=%.1f mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
                     name.c_str(), h.count, h.sum, h.mean(), h.p50(), h.p95(), h.p99(), h.max);
    append_buckets_text(out, h);
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot, std::string_view name) {
  std::string out = "{\n  \"bench\": \"";
  out.append(name);
  out += "\",\n  \"rows\": [\n";
  bool first = true;
  const auto row_start = [&](const char* kind, const std::string& metric) {
    if (!first) out += ",\n";
    first = false;
    append_formatted(out, "    {\"kind\": \"%s\", \"metric\": \"%s\"", kind, metric.c_str());
  };
  for (const auto& [metric, value] : snapshot.counters) {
    row_start("counter", metric);
    append_formatted(out, ", \"value\": %" PRIu64 "}", value);
  }
  for (const auto& [metric, value] : snapshot.gauges) {
    row_start("gauge", metric);
    append_formatted(out, ", \"value\": %" PRId64 "}", value);
  }
  for (const auto& [metric, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    row_start("histogram", metric);
    append_formatted(out,
                     ", \"count\": %" PRIu64
                     ", \"sum_us\": %.4f, \"mean_us\": %.4f, \"p50_us\": %.4f, "
                     "\"p95_us\": %.4f, \"p99_us\": %.4f, \"max_us\": %.4f",
                     h.count, h.sum, h.mean(), h.p50(), h.p95(), h.p99(), h.max);
    // Raw buckets so cross-server aggregation can merge distributions and
    // take quantiles of the merge (never the other way around).
    out += ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      append_formatted(out, "%s%g", i == 0 ? "" : ", ", h.bounds[i]);
    }
    out += "], \"bucket_counts\": [";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      append_formatted(out, "%s%" PRIu64, i == 0 ? "" : ", ", h.bucket_counts[i]);
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::pair<std::string, std::optional<std::uint32_t>> split_shard_suffix(
    std::string_view name) {
  const std::string_view marker = "{shard=";
  const std::size_t brace = name.rfind(marker);
  if (brace == std::string_view::npos || name.empty() || name.back() != '}') {
    return {std::string(name), std::nullopt};
  }
  const std::string_view digits = name.substr(brace + marker.size(),
                                              name.size() - brace - marker.size() - 1);
  if (digits.empty()) return {std::string(name), std::nullopt};
  std::uint32_t shard = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return {std::string(name), std::nullopt};
    shard = shard * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return {std::string(name.substr(0, brace)), shard};
}

std::string prometheus_name(std::string_view base) {
  std::string out;
  out.reserve(base.size() + 1);
  for (const char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') out.insert(out.begin(), '_');
  if (out.empty()) out = "_";
  return out;
}

namespace {

std::string shard_labels(const std::optional<std::uint32_t>& shard) {
  if (!shard.has_value()) return "";
  return "{shard=\"" + std::to_string(*shard) + "\"}";
}

/// `{shard="N",le="x"}` — the bucket label set, with or without a shard.
std::string bucket_labels(const std::optional<std::uint32_t>& shard, const std::string& le) {
  std::string out = "{";
  if (shard.has_value()) out += "shard=\"" + std::to_string(*shard) + "\",";
  out += "le=\"" + le + "\"}";
  return out;
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  // Fold `{shard=N}`-suffixed series into one family per escaped base name,
  // so every shard's series sits under a single # TYPE header with a proper
  // label — what a scraper can actually aggregate across.
  struct Series {
    std::optional<std::uint32_t> shard;
    std::string text;  // fully rendered sample lines for this series
  };
  std::map<std::string, std::pair<const char*, std::vector<Series>>> families;

  const auto add = [&](const std::string& raw, const char* type,
                       const std::function<std::string(const std::string& name,
                                                       const std::optional<std::uint32_t>&)>&
                           render) {
    auto [base, shard] = split_shard_suffix(raw);
    const std::string name = prometheus_name(base);
    auto& family = families[name];
    family.first = type;
    family.second.push_back(Series{shard, render(name, shard)});
  };

  for (const auto& [raw, value] : snapshot.counters) {
    add(raw, "counter", [&](const std::string& name, const auto& shard) {
      std::string line;
      append_formatted(line, "%s%s %" PRIu64 "\n", name.c_str(),
                       shard_labels(shard).c_str(), value);
      return line;
    });
  }
  for (const auto& [raw, value] : snapshot.gauges) {
    add(raw, "gauge", [&](const std::string& name, const auto& shard) {
      std::string line;
      append_formatted(line, "%s%s %" PRId64 "\n", name.c_str(),
                       shard_labels(shard).c_str(), value);
      return line;
    });
  }
  for (const auto& [raw, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    add(raw, "histogram", [&](const std::string& name, const auto& shard) {
      std::string lines;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
        cumulative += h.bucket_counts[i];
        const std::string le =
            i < h.bounds.size() ? format_double(h.bounds[i]) : std::string("+Inf");
        append_formatted(lines, "%s_bucket%s %" PRIu64 "\n", name.c_str(),
                         bucket_labels(shard, le).c_str(), cumulative);
      }
      append_formatted(lines, "%s_sum%s %.6f\n", name.c_str(), shard_labels(shard).c_str(),
                       h.sum);
      append_formatted(lines, "%s_count%s %" PRIu64 "\n", name.c_str(),
                       shard_labels(shard).c_str(), h.count);
      return lines;
    });
  }

  for (const auto& [name, family] : families) {
    append_formatted(out, "# TYPE %s %s\n", name.c_str(), family.first);
    for (const Series& series : family.second) out += series.text;
  }
  return out;
}

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  return std::fclose(file) == 0 && ok;
}

/// Minimal JSON string escaping (names/categories are internal constants,
/// but a trace file must stay loadable no matter what lands in them).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_formatted(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool write_json_sidecar(const MetricsSnapshot& snapshot, std::string_view name) {
  return write_file("BENCH_" + std::string(name) + ".json", to_json(snapshot, name));
}

std::string to_chrome_trace(const std::vector<Event>& events) {
  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  const auto separator = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // One process_name metadata record per node, so Perfetto labels tracks.
  std::vector<std::uint32_t> nodes;
  for (const Event& event : events) {
    if (std::find(nodes.begin(), nodes.end(), event.node) == nodes.end()) {
      nodes.push_back(event.node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  for (const std::uint32_t node : nodes) {
    separator();
    append_formatted(out,
                     "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %u, \"tid\": %u, "
                     "\"args\": {\"name\": \"node %u\"}}",
                     node, node, node);
  }

  for (const Event& event : events) {
    separator();
    if (event.kind == EventKind::kSpan) {
      append_formatted(out,
                       "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": %u, "
                       "\"tid\": %u, \"ts\": %" PRIu64 ", \"dur\": %" PRIu64
                       ", \"args\": {\"trace_id\": \"%016" PRIx64 "\", \"span_id\": \"%016" PRIx64
                       "\", \"parent_span_id\": \"%016" PRIx64 "\"}}",
                       json_escape(event.name).c_str(), json_escape(event.category).c_str(),
                       event.node, event.node, event.ts_us, event.dur_us, event.trace_id,
                       event.span_id, event.parent_span_id);
    } else {
      append_formatted(out,
                       "{\"ph\": \"i\", \"s\": \"g\", \"name\": \"%s\", \"cat\": \"%s\", "
                       "\"pid\": %u, \"tid\": %u, \"ts\": %" PRIu64
                       ", \"args\": {\"peer\": %u, \"trace_id\": \"%016" PRIx64 "\"}}",
                       json_escape(event.name).c_str(), json_escape(event.category).c_str(),
                       event.node, event.node, event.ts_us, event.peer, event.trace_id);
    }
  }
  out += "\n]\n}\n";
  return out;
}

bool write_trace_sidecar(const std::vector<Event>& events, std::string_view name) {
  return write_file("TRACE_" + std::string(name) + ".json", to_chrome_trace(events));
}

}  // namespace securestore::obs
