#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace securestore::obs {

namespace {

void append_formatted(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_formatted(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof buffer, format, args);
  va_end(args);
  if (n > 0) out.append(buffer, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof buffer - 1));
}

}  // namespace

std::string to_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    append_formatted(out, "counter    %-44s %12" PRIu64 "\n", name.c_str(), value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    append_formatted(out, "gauge      %-44s %12" PRId64 "\n", name.c_str(), value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    append_formatted(out,
                     "histogram  %-44s count=%" PRIu64
                     " mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
                     name.c_str(), h.count, h.mean(), h.p50(), h.p95(), h.p99(), h.max);
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot, std::string_view name) {
  std::string out = "{\n  \"bench\": \"";
  out.append(name);
  out += "\",\n  \"rows\": [\n";
  bool first = true;
  const auto row_start = [&](const char* kind, const std::string& metric) {
    if (!first) out += ",\n";
    first = false;
    append_formatted(out, "    {\"kind\": \"%s\", \"metric\": \"%s\"", kind, metric.c_str());
  };
  for (const auto& [metric, value] : snapshot.counters) {
    row_start("counter", metric);
    append_formatted(out, ", \"value\": %" PRIu64 "}", value);
  }
  for (const auto& [metric, value] : snapshot.gauges) {
    row_start("gauge", metric);
    append_formatted(out, ", \"value\": %" PRId64 "}", value);
  }
  for (const auto& [metric, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    row_start("histogram", metric);
    append_formatted(out,
                     ", \"count\": %" PRIu64
                     ", \"mean_us\": %.4f, \"p50_us\": %.4f, \"p95_us\": %.4f, "
                     "\"p99_us\": %.4f, \"max_us\": %.4f}",
                     h.count, h.mean(), h.p50(), h.p95(), h.p99(), h.max);
  }
  out += "\n  ]\n}\n";
  return out;
}

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), file) == body.size();
  return std::fclose(file) == 0 && ok;
}

/// Minimal JSON string escaping (names/categories are internal constants,
/// but a trace file must stay loadable no matter what lands in them).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_formatted(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool write_json_sidecar(const MetricsSnapshot& snapshot, std::string_view name) {
  return write_file("BENCH_" + std::string(name) + ".json", to_json(snapshot, name));
}

std::string to_chrome_trace(const std::vector<Event>& events) {
  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  const auto separator = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // One process_name metadata record per node, so Perfetto labels tracks.
  std::vector<std::uint32_t> nodes;
  for (const Event& event : events) {
    if (std::find(nodes.begin(), nodes.end(), event.node) == nodes.end()) {
      nodes.push_back(event.node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  for (const std::uint32_t node : nodes) {
    separator();
    append_formatted(out,
                     "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %u, \"tid\": %u, "
                     "\"args\": {\"name\": \"node %u\"}}",
                     node, node, node);
  }

  for (const Event& event : events) {
    separator();
    if (event.kind == EventKind::kSpan) {
      append_formatted(out,
                       "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": %u, "
                       "\"tid\": %u, \"ts\": %" PRIu64 ", \"dur\": %" PRIu64
                       ", \"args\": {\"trace_id\": \"%016" PRIx64 "\", \"span_id\": \"%016" PRIx64
                       "\", \"parent_span_id\": \"%016" PRIx64 "\"}}",
                       json_escape(event.name).c_str(), json_escape(event.category).c_str(),
                       event.node, event.node, event.ts_us, event.dur_us, event.trace_id,
                       event.span_id, event.parent_span_id);
    } else {
      append_formatted(out,
                       "{\"ph\": \"i\", \"s\": \"g\", \"name\": \"%s\", \"cat\": \"%s\", "
                       "\"pid\": %u, \"tid\": %u, \"ts\": %" PRIu64
                       ", \"args\": {\"peer\": %u, \"trace_id\": \"%016" PRIx64 "\"}}",
                       json_escape(event.name).c_str(), json_escape(event.category).c_str(),
                       event.node, event.node, event.ts_us, event.peer, event.trace_id);
    }
  }
  out += "\n]\n}\n";
  return out;
}

bool write_trace_sidecar(const std::vector<Event>& events, std::string_view name) {
  return write_file("TRACE_" + std::string(name) + ".json", to_chrome_trace(events));
}

}  // namespace securestore::obs
