#include "obs/health.h"

#include <algorithm>
#include <cassert>

namespace securestore::obs {

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kGreen:
      return "green";
    case Verdict::kDegraded:
      return "degraded";
    case Verdict::kCritical:
      return "critical";
  }
  return "?";
}

HealthMonitor::HealthMonitor(Registry& registry, EventLog* events,
                             std::vector<ServerInfo> servers, Options options)
    : servers_(std::move(servers)),
      options_(options),
      events_(events),
      scrapes_(registry.counter("health.scrapes")),
      scrape_failures_(registry.counter("health.scrape_failures")),
      state_changes_(registry.counter("health.state_changes")),
      verdict_gauge_(registry.gauge("health.verdict")),
      unhealthy_gauge_(registry.gauge("health.unhealthy_servers")),
      margin_gauge_(registry.gauge("health.quorum_margin")),
      state_(servers_.size()),
      pending_(servers_.size()),
      observed_(servers_.size(), false) {
  for (const ServerInfo& info : servers_) {
    group_count_ = std::max(group_count_, info.group + 1);
  }
  group_unhealthy_.assign(group_count_, 0);
  margin_ = static_cast<std::int64_t>(options_.b);
  margin_gauge_.set(margin_);
}

std::uint32_t HealthMonitor::unhealthy_in_group(std::uint32_t group) const {
  return group < group_unhealthy_.size() ? group_unhealthy_[group] : 0;
}

void HealthMonitor::begin_round(std::uint64_t now_us) {
  now_us_ = now_us;
  in_round_ = true;
  std::fill(pending_.begin(), pending_.end(), std::nullopt);
  std::fill(observed_.begin(), observed_.end(), false);
}

void HealthMonitor::observe(std::size_t server_index, std::optional<ServerSample> sample) {
  if (server_index >= servers_.size() || !in_round_) return;
  observed_[server_index] = true;
  if (sample.has_value()) {
    scrapes_.inc();
    state_[server_index].scrapes += 1;
    pending_[server_index] = std::move(sample);
  } else {
    scrape_failures_.inc();
    state_[server_index].failures += 1;
  }
}

void HealthMonitor::emit_instant(std::uint32_t node, std::string_view name) {
  if (events_ != nullptr) {
    events_->instant(node, /*peer=*/0, TraceContext{}, name, "health", now_us_);
  }
}

void HealthMonitor::evaluate(std::size_t i) {
  ServerState& s = state_[i];
  const SloRules& rules = options_.rules;
  std::vector<std::string> causes;

  if (!pending_[i].has_value()) {
    causes.emplace_back("unreachable");
  } else {
    const ServerSample& cur = *pending_[i];
    const std::optional<ServerSample>& prev = s.last;
    if (prev.has_value() && cur.uptime_us < prev->uptime_us) {
      // The server came back with a younger clock than we last saw: it
      // restarted (or was restored under a fault flip). Pin it suspect so
      // one clean post-restart sample cannot clear it instantly.
      s.restart_hold_until_us = now_us_ + rules.restart_hold_us;
    }
    if (now_us_ < s.restart_hold_until_us) causes.emplace_back("restarted");
    if (cur.gossip_idle_us > rules.gossip_stale_us) causes.emplace_back("gossip-stale");
    if (cur.wal_append_p99_us > rules.wal_p99_us) causes.emplace_back("wal-slow");
    if (cur.compaction_lag > rules.compaction_lag) causes.emplace_back("compaction-lag");
    if (prev.has_value() && cur.requests >= prev->requests && cur.shed >= prev->shed) {
      const std::uint64_t dispatched = cur.requests - prev->requests;
      const std::uint64_t shed = cur.shed - prev->shed;
      if (dispatched > 0 &&
          static_cast<double>(shed) / static_cast<double>(dispatched) > rules.shed_fraction) {
        causes.emplace_back("shedding");
      }
    }
    if (cur.overloaded) causes.emplace_back("overloaded");
    if (cur.net_backlog > rules.net_backlog) causes.emplace_back("backlog");
    s.last = cur;
  }

  const bool bad = !causes.empty();
  if (bad) {
    s.consecutive_bad += 1;
    s.consecutive_good = 0;
    s.causes = std::move(causes);
  } else {
    s.consecutive_good += 1;
    s.consecutive_bad = 0;
  }

  if (s.healthy && s.consecutive_bad >= rules.unhealthy_after) {
    s.healthy = false;
    state_changes_.inc();
    emit_instant(servers_[i].node, "health.mark_unhealthy");
    if (on_mark_) on_mark_(static_cast<std::uint32_t>(i), false, now_us_, s.causes);
  } else if (!s.healthy && s.consecutive_good >= rules.healthy_after) {
    s.healthy = true;
    s.causes.clear();
    state_changes_.inc();
    emit_instant(servers_[i].node, "health.mark_healthy");
    if (on_mark_) on_mark_(static_cast<std::uint32_t>(i), true, now_us_, s.causes);
  }
}

void HealthMonitor::end_round() {
  if (!in_round_) return;
  rounds_ += 1;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    // A server never observed this round counts as a scrape timeout: the
    // driver tried everyone, silence is the signal.
    if (!observed_[i]) observe(i, std::nullopt);
    evaluate(i);
  }

  std::fill(group_unhealthy_.begin(), group_unhealthy_.end(), 0);
  std::uint32_t total_unhealthy = 0;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!state_[i].healthy) {
      group_unhealthy_[servers_[i].group] += 1;
      total_unhealthy += 1;
    }
  }
  std::uint32_t worst = 0;
  for (const std::uint32_t u : group_unhealthy_) worst = std::max(worst, u);
  margin_ = static_cast<std::int64_t>(options_.b) - static_cast<std::int64_t>(worst);

  const Verdict next = total_unhealthy == 0 ? Verdict::kGreen
                       : margin_ >= 0      ? Verdict::kDegraded
                                           : Verdict::kCritical;
  if (next != verdict_) {
    verdict_ = next;
    emit_instant(/*node=*/0, "health.verdict_change");
    if (on_verdict_) on_verdict_(verdict_, now_us_);
  }
  verdict_gauge_.set(static_cast<std::int64_t>(verdict_));
  unhealthy_gauge_.set(total_unhealthy);
  margin_gauge_.set(margin_);
  in_round_ = false;
}

}  // namespace securestore::obs
