// Observability: per-operation tracing (DESIGN.md §8).
//
// An `OpTrace` stamps one protocol run (a P1–P6 client operation, a server
// apply, a gossip round) with per-phase timings and drops the results into
// the registry when the operation finishes:
//
//   <op>.latency_us   histogram — whole-operation latency
//   <op>.<phase>_us   histogram — time attributed to each named phase
//   <op>.ops          counter   — completed operations
//   <op>.failures     counter   — operations that finished !ok
//   <op>.<extra>      counter   — anything noted via add() (retries, ...)
//
// Phases are sequential marks: `phase("sign")` closes whatever phase was
// running and opens "sign"; re-entering a name accumulates (escalation
// rounds re-enter "quorum" repeatedly). The trace is clock-agnostic — the
// protocol stack passes the transport clock so spans measure virtual time
// under the simulator and wall time on real transports, identically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"

namespace securestore::obs {

/// Microseconds from an arbitrary epoch; monotone.
using ClockFn = std::function<std::uint64_t()>;

/// Wall clock in microseconds since process start (steady). Used for real
/// I/O the simulator cannot model (WAL appends/fsyncs).
std::uint64_t wall_now_us();

class OpTrace {
 public:
  /// Starts the trace (and its first, unnamed phase — name it with
  /// phase() immediately if you care where the first span lands).
  OpTrace(Registry& registry, std::string op, ClockFn clock);

  /// An unfinished trace records a failure: protocol callbacks that get
  /// dropped on the floor still show up in <op>.failures.
  ~OpTrace();

  OpTrace(const OpTrace&) = delete;
  OpTrace& operator=(const OpTrace&) = delete;

  /// Hooks this operation into the distributed trace: draws a root-span
  /// admission from `events` (subject to its sampling knob) and, when it
  /// wins, emits the root span at finish and each phase segment as a child
  /// span. `node` labels the emitting track in exported timelines. ctx()
  /// is then what rides out in rpc envelopes.
  void attach_root(EventLog& events, std::uint32_t node);

  /// The trace context downstream rpcs should carry; invalid when tracing
  /// is off, unsampled, or attach_root was never called.
  const TraceContext& ctx() const { return ctx_; }

  /// Closes the running phase (attributing the elapsed time to it) and
  /// opens `name`. Re-entering a name accumulates.
  void phase(std::string_view name);

  /// Buffers a named counter bump, flushed at finish as `<op>.<name>`.
  void add(std::string_view name, std::uint64_t n = 1);

  /// Records everything into the registry. Idempotent; later calls no-op.
  void finish(bool ok);

  const std::string& op() const { return op_; }

 private:
  void close_phase(std::uint64_t now);

  Registry& registry_;
  std::string op_;
  ClockFn clock_;
  EventLog* events_ = nullptr;
  std::uint32_t node_ = 0;
  TraceContext ctx_{};
  std::uint64_t started_;
  std::uint64_t phase_started_;
  std::string current_phase_;  // empty: unnamed span, not recorded
  std::vector<std::pair<std::string, std::uint64_t>> phase_totals_us_;
  std::vector<std::pair<std::string, std::uint64_t>> counts_;
  bool finished_ = false;
};

/// Shared-ownership convenience for async code: the trace rides through the
/// callback chain and finishes (or records a failure from its destructor)
/// when the last reference drops.
inline std::shared_ptr<OpTrace> start_trace(Registry& registry, std::string op, ClockFn clock) {
  return std::make_shared<OpTrace>(registry, std::move(op), std::move(clock));
}

}  // namespace securestore::obs
