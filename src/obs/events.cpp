#include "obs/events.h"

#include <algorithm>

#include "util/rng.h"

namespace securestore::obs {

void TraceContext::encode(Writer& w) const {
  w.u64(trace_id);
  w.u64(span_id);
  w.u8(flags);
  w.u64(origin_us);
}

TraceContext TraceContext::decode(Reader& r) {
  TraceContext ctx;
  ctx.trace_id = r.u64();
  ctx.span_id = r.u64();
  ctx.flags = r.u8();
  ctx.origin_us = r.u64();
  return ctx;
}

std::uint64_t next_trace_id() {
  // Entropy-seeded base so ids from distinct processes (TCP deployments)
  // land in disjoint ranges; the low bits count up so ids within one
  // process are dense and cheap.
  static std::atomic<std::uint64_t> counter{Rng(system_entropy_seed()).next_u64() | 1};
  std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  if (id == 0) id = counter.fetch_add(1, std::memory_order_relaxed);
  return id;
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void EventLog::set_sample_every(std::uint32_t n) {
  sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

TraceContext EventLog::begin_root(std::uint64_t origin_us) {
  if (!enabled()) return {};
  const std::uint32_t n = sample_every();
  if (n > 1 && root_counter_.fetch_add(1, std::memory_order_relaxed) % n != 0) return {};
  TraceContext ctx;
  ctx.trace_id = next_trace_id();
  ctx.span_id = next_trace_id();
  ctx.flags = TraceContext::kSampledFlag;
  ctx.origin_us = origin_us;
  return ctx;
}

void EventLog::span(std::uint32_t node, const TraceContext& parent, std::string_view name,
                    std::string_view category, std::uint64_t ts_us, std::uint64_t dur_us) {
  if (!want(parent)) return;
  Event event;
  event.kind = EventKind::kSpan;
  event.node = node;
  event.trace_id = parent.trace_id;
  event.span_id = next_trace_id();
  event.parent_span_id = parent.span_id;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.name.assign(name);
  event.category.assign(category);
  record(std::move(event));
}

void EventLog::instant(std::uint32_t node, std::uint32_t peer, const TraceContext& parent,
                       std::string_view name, std::string_view category, std::uint64_t ts_us) {
  if (!enabled()) return;
  Event event;
  event.kind = EventKind::kInstant;
  event.node = node;
  event.peer = peer;
  event.trace_id = parent.trace_id;
  event.parent_span_id = parent.span_id;
  event.ts_us = ts_us;
  event.name.assign(name);
  event.category.assign(category);
  record(std::move(event));
}

void EventLog::record(Event event) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    next_ = ring_.size() % capacity_;
    return;
  }
  // Full: overwrite the oldest (the slot the cursor points at).
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard lock(mutex_);
  if (!wrapped_ || ring_.size() < capacity_) return ring_;
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Event> EventLog::recent(std::size_t max_n) const {
  std::lock_guard lock(mutex_);
  const std::size_t have = ring_.size();
  const std::size_t take = std::min(max_n, have);
  std::vector<Event> out;
  out.reserve(take);
  // Newest event sits at next_-1 once the ring wrapped, at have-1 before.
  const std::size_t oldest_wanted =
      (wrapped_ && have == capacity_) ? (next_ + have - take) % have : have - take;
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(ring_[(oldest_wanted + i) % have]);
  }
  return out;
}

std::size_t EventLog::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

void EventLog::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_.store(0, std::memory_order_relaxed);
  root_counter_.store(0, std::memory_order_relaxed);
}

}  // namespace securestore::obs
