// Core enumerations for the secure store.
#pragma once

#include <cstdint>

namespace securestore::core {

/// The consistency level fixed at item-group creation time (§5.2: "the same
/// data item cannot be accessed with MRC consistency requirement at one
/// time and CC consistency at another time").
enum class ConsistencyModel : std::uint8_t {
  kMRC = 0,  // monotonic read consistency
  kCC = 1,   // causal consistency
};

/// Who writes the data — this selects the protocol variant (§5.2 vs §5.3).
enum class SharingMode : std::uint8_t {
  kSingleWriter = 0,  // non-shared, or one writer / many readers
  kMultiWriter = 1,   // read and written by multiple clients
};

/// Whether the multi-writer protocol must defend against malicious clients
/// (§5.3's hardened variant: 2b+1 quorums, b+1 matching replies,
/// server-side logs and causal holds).
enum class ClientTrust : std::uint8_t {
  kHonest = 0,
  kByzantine = 1,
};

const char* to_string(ConsistencyModel model);
const char* to_string(SharingMode mode);
const char* to_string(ClientTrust trust);

}  // namespace securestore::core
