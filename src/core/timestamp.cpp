#include "core/timestamp.h"

#include "util/bytes.h"

namespace securestore::core {

void Timestamp::encode(Writer& w) const {
  w.u64(time);
  w.u32(writer.value);
  w.bytes(digest);
}

Timestamp Timestamp::decode(Reader& r) {
  Timestamp ts;
  ts.time = r.u64();
  ts.writer = ClientId{r.u32()};
  ts.digest = r.bytes();
  return ts;
}

std::string to_string(const Timestamp& ts) {
  std::string out = "ts(" + std::to_string(ts.time);
  if (ts.writer != ClientId{}) out += "," + to_string(ts.writer);
  if (!ts.digest.empty()) out += ",d=" + to_hex(ts.digest).substr(0, 8);
  out += ")";
  return out;
}

}  // namespace securestore::core
