#include "core/scatter.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/messages.h"
#include "crypto/chacha20.h"
#include "crypto/ida.h"
#include "crypto/shamir.h"

namespace securestore::core {

namespace {

/// The payload stored at one server: its IDA fragment plus its key share.
struct FragmentPayload {
  crypto::IdaFragment fragment;
  crypto::ShamirShare share;
  Bytes nonce;  // AEAD nonce of the ciphertext (same in every fragment)

  Bytes serialize() const {
    Writer w;
    w.u8(fragment.index);
    w.u32(fragment.original_size);
    w.bytes(fragment.data);
    w.u8(share.index);
    w.bytes(share.data);
    w.bytes(nonce);
    return w.take();
  }

  static FragmentPayload deserialize(BytesView data) {
    Reader r(data);
    FragmentPayload payload;
    payload.fragment.index = r.u8();
    payload.fragment.original_size = r.u32();
    payload.fragment.data = r.bytes();
    payload.share.index = r.u8();
    payload.share.data = r.bytes();
    payload.nonce = r.bytes();
    r.expect_end();
    return payload;
  }
};

}  // namespace

ItemId fragment_item(ItemId item, std::uint8_t server_index) {
  if (item.value >> 56 != 0) {
    throw std::invalid_argument("fragment_item: item uid must fit in 56 bits");
  }
  // Top bit tags the reserved fragment namespace so fragment uids can never
  // collide with plain item uids (which use at most 56 bits here).
  return ItemId{(item.value << 8) | server_index | (1ull << 63)};
}

ScatteredStore::ScatteredStore(net::Transport& transport, NodeId network_id,
                               ClientId client_id, crypto::KeyPair keys, StoreConfig config,
                               Options options, Rng rng)
    : node_(transport, network_id),
      client_id_(client_id),
      keys_(std::move(keys)),
      config_(std::move(config)),
      options_(std::move(options)),
      rng_(std::move(rng)) {
  config_.validate();
  if (config_.n < 2 * config_.b + 2) {
    throw std::invalid_argument("ScatteredStore: needs n >= 2b+2");
  }
  if (options_.policy.sharing != SharingMode::kSingleWriter) {
    throw std::invalid_argument("ScatteredStore: single-writer data only");
  }
}

Bytes ScatteredStore::data_key_aad(ItemId item) const {
  Writer w;
  w.str("securestore.scatter.v1");
  w.u64(item.value);
  return w.take();
}

void ScatteredStore::write(ItemId item, BytesView value, VoidCb done) {
  const unsigned m = threshold();  // IDA and Shamir threshold: b+1

  // 1. Encrypt under a fresh data key.
  const Bytes data_key = rng_.bytes(crypto::kChaChaKeySize);
  const Bytes nonce = rng_.bytes(crypto::kChaChaNonceSize);
  const Bytes ciphertext = crypto::aead_seal(data_key, nonce, data_key_aad(item), value);

  // 2. + 3. Disperse the ciphertext, share the key.
  const auto fragments = crypto::ida_disperse(ciphertext, m, config_.n);
  const auto shares = crypto::shamir_split(data_key, m, config_.n, rng_);

  // 4. One signed record per server.
  ++version_;
  auto acks = std::make_shared<std::size_t>(0);
  auto outstanding = std::make_shared<std::size_t>(config_.n);
  const std::size_t needed = config_.n - config_.b;
  auto finished = std::make_shared<bool>(false);

  for (std::uint32_t i = 0; i < config_.n; ++i) {
    FragmentPayload payload;
    payload.fragment = fragments[i];
    payload.share = shares[i];
    payload.nonce = nonce;

    WriteRecord record;
    record.item = fragment_item(item, static_cast<std::uint8_t>(i));
    record.group = options_.policy.group;
    record.model = options_.policy.model;
    record.flags = kScattered;
    record.writer = client_id_;
    record.ts = Timestamp{version_, {}, {}};
    record.writer_context = Context(options_.policy.group);
    record.value = payload.serialize();
    record.sign(keys_.seed);

    WriteReq req;
    req.record = std::move(record);

    net::QuorumCall::start(
        node_, {config_.servers[i]}, net::MsgType::kWrite, req.serialize(),
        [acks](NodeId /*from*/, net::MsgType /*type*/, BytesView body) {
          try {
            if (WriteResp::deserialize(body).ok) ++*acks;
          } catch (const DecodeError&) {
          }
          return true;
        },
        [acks, outstanding, needed, finished, done](net::QuorumOutcome /*outcome*/,
                                                    std::size_t) {
          --*outstanding;
          if (*finished) return;
          if (*acks >= needed) {
            *finished = true;
            done(VoidResult{});
            return;
          }
          if (*outstanding == 0) {
            *finished = true;
            done(VoidResult(Error::kInsufficientQuorum,
                            "fewer than n-b servers stored their fragment"));
          }
        },
        net::QuorumCall::Options{options_.round_timeout});
  }
}

void ScatteredStore::read(ItemId item, ReadCb done) {
  const unsigned m = threshold();

  struct Collected {
    std::map<std::uint64_t, std::vector<FragmentPayload>> by_version;
    std::size_t replies = 0;
  };
  auto state = std::make_shared<Collected>();

  // One targeted request per server for ITS fragment uid; completion after
  // all servers answered or timed out.
  auto outstanding = std::make_shared<std::size_t>(config_.n);
  auto finish = [this, state, m, item, done]() {
    // Newest version with >= m fragments wins.
    for (auto it = state->by_version.rbegin(); it != state->by_version.rend(); ++it) {
      const auto& payloads = it->second;
      if (payloads.size() < m) continue;

      std::vector<crypto::IdaFragment> fragments;
      std::vector<crypto::ShamirShare> shares;
      for (const FragmentPayload& payload : payloads) {
        fragments.push_back(payload.fragment);
        shares.push_back(payload.share);
      }
      try {
        const Bytes ciphertext = crypto::ida_reconstruct(fragments, m);
        const Bytes data_key = crypto::shamir_combine(shares, m);
        const auto plaintext =
            crypto::aead_open(data_key, payloads.front().nonce, data_key_aad(item), ciphertext);
        if (plaintext.has_value()) {
          done(Result<Bytes>(*plaintext));
          return;
        }
        // AEAD failure: corrupted or mixed fragments — try an older version.
      } catch (const std::invalid_argument&) {
        // Inconsistent fragment set; try an older version.
      }
    }
    done(Result<Bytes>(state->by_version.empty() ? Error::kNotFound : Error::kNoAgreement,
                       state->by_version.empty()
                           ? "no server returned a fragment"
                           : "no version had b+1 consistent fragments"));
  };

  for (std::uint32_t i = 0; i < config_.n; ++i) {
    ReadReq req;
    req.item = fragment_item(item, static_cast<std::uint8_t>(i));
    req.group = options_.policy.group;
    req.requester = client_id_;

    net::QuorumCall::start(
        node_, {config_.servers[i]}, net::MsgType::kRead, req.serialize(),
        [this, state, expected_item = req.item](NodeId /*from*/, net::MsgType /*type*/,
                                                BytesView body) {
          try {
            ReadResp resp = ReadResp::deserialize(body);
            if (resp.record.has_value() && resp.record->item == expected_item &&
                (resp.record->flags & kScattered) &&
                resp.record->verify(keys_.public_key)) {
              FragmentPayload payload = FragmentPayload::deserialize(resp.record->value);
              state->by_version[resp.record->ts.time].push_back(std::move(payload));
            }
          } catch (const DecodeError&) {
          }
          return true;
        },
        [outstanding, finish](net::QuorumOutcome /*outcome*/, std::size_t) {
          if (--*outstanding == 0) finish();
        },
        net::QuorumCall::Options{options_.round_timeout});
  }
}

}  // namespace securestore::core
