#include "core/client.h"

#include <algorithm>
#include <map>

namespace securestore::core {

namespace {

/// Sort helper: newest timestamp first.
bool newer(const WriteRecord& a, const WriteRecord& b) { return b.ts < a.ts; }

}  // namespace

SecureStoreClient::SecureStoreClient(net::Transport& transport, NodeId network_id,
                                     ClientId client_id, crypto::KeyPair keys,
                                     StoreConfig config, Options options, Rng rng)
    : node_(transport, network_id),
      client_id_(client_id),
      keys_(std::move(keys)),
      config_(std::move(config)),
      options_(std::move(options)),
      rng_(std::move(rng)),
      fault_silent_(transport.registry().counter("client.fault.silent")),
      fault_forgery_(transport.registry().counter("client.fault.forgery")),
      deadline_exceeded_(transport.registry().counter("client.deadline_exceeded")),
      refused_(transport.registry().counter("client.refused")),
      breaker_trips_(transport.registry().counter("client.breaker_trips")) {
  config_.validate();
  if (!options_.codec) options_.codec = std::make_shared<PlainValueCodec>();
  if (options_.dynamic_quorums.has_value()) {
    FaultEstimator::Config estimator_config = *options_.dynamic_quorums;
    estimator_config.b_max = std::min(estimator_config.b_max, config_.b);
    estimator_.emplace(estimator_config);
  }

  // Default server preference: a seeded shuffle, so different clients load
  // different b+1 subsets.
  server_order_ = config_.servers;
  for (std::size_t i = server_order_.size(); i > 1; --i) {
    std::swap(server_order_[i - 1], server_order_[rng_.next_below(i)]);
  }
}

void SecureStoreClient::set_server_preference(std::vector<NodeId> order) {
  server_order_ = std::move(order);
}

void SecureStoreClient::set_codec(std::shared_ptr<ValueCodec> codec) {
  options_.codec = codec ? std::move(codec) : std::make_shared<PlainValueCodec>();
}

std::vector<NodeId> SecureStoreClient::pick_servers(std::size_t count, std::size_t skip) const {
  // Preference order, with servers the estimator distrusts OR the circuit
  // breaker holds open demoted to the back — they still serve as escalation
  // fallbacks, never first choices, so the quorum path routes around a
  // drowning replica the same way it routes around a suspected-faulty one.
  const auto demoted = [this](NodeId server) {
    if (estimator_.has_value() && estimator_->is_distrusted(server)) return true;
    return breaker_open(server);
  };
  std::vector<NodeId> ordered;
  ordered.reserve(server_order_.size());
  for (const NodeId server : server_order_) {
    if (!demoted(server)) ordered.push_back(server);
  }
  for (const NodeId server : server_order_) {
    if (demoted(server)) ordered.push_back(server);
  }

  std::vector<NodeId> out;
  for (std::size_t i = skip; i < ordered.size() && out.size() < count; ++i) {
    out.push_back(ordered[i]);
  }
  return out;
}

std::uint32_t SecureStoreClient::effective_b() const {
  return estimator_.has_value() ? estimator_->estimated_b() : config_.b;
}

void SecureStoreClient::note_responded(NodeId server) {
  if (estimator_.has_value()) estimator_->report_good_interaction(server);
}

void SecureStoreClient::note_silent(const std::vector<NodeId>& targets,
                                    const std::vector<NodeId>& responders) {
  for (const NodeId target : targets) {
    if (std::find(responders.begin(), responders.end(), target) == responders.end()) {
      fault_silent_.inc();
      if (estimator_.has_value()) estimator_->report_soft_evidence(target);
    }
  }
}

void SecureStoreClient::note_forgery(NodeId server) {
  fault_forgery_.inc();
  if (estimator_.has_value()) estimator_->report_hard_evidence(server);
}

bool SecureStoreClient::note_wrong_shard(net::MsgType type, BytesView resp_body) {
  if (type != net::MsgType::kWrongShard) return false;
  // Keep the first rejection's ring; a second rejecting server in the same
  // round adds nothing (the router verifies and version-checks anyway).
  if (wrong_shard_ring_.empty()) {
    wrong_shard_ring_.assign(resp_body.begin(), resp_body.end());
  }
  return true;
}

bool SecureStoreClient::breaker_open(NodeId server) const {
  const auto it = breakers_.find(server.value);
  return it != breakers_.end() && it->second.open_until > node_.transport().now();
}

bool SecureStoreClient::note_overloaded(NodeId from, net::MsgType type, BytesView resp_body) {
  if (type != net::MsgType::kOverloaded) {
    // The server answered with real content: it is keeping up again, so any
    // accumulated strikes are stale.
    const auto it = breakers_.find(from.value);
    if (it != breakers_.end()) breakers_.erase(it);
    return false;
  }
  refused_.inc();

  // The hint is honored only when the refusal authenticates: a correct
  // server signs overload_statement(retry_after_us) with its well-known
  // key. Unverifiable refusals still count (the server *did* refuse) but
  // contribute no hint a forger could inflate — and the clamp bounds even a
  // correctly signed hint, so a Byzantine server can slow this client by at
  // most retry_after_clamp per round.
  try {
    const OverloadedResp resp = OverloadedResp::deserialize(resp_body);
    const auto key = config_.server_keys.find(from);
    if (key != config_.server_keys.end() &&
        crypto::meter_verify(key->second, overload_statement(resp.retry_after_us),
                             resp.signature)) {
      const SimDuration hint = std::min<SimDuration>(
          microseconds(resp.retry_after_us), options_.retry_after_clamp);
      overload_hint_ = std::max(overload_hint_, hint);
    }
  } catch (const DecodeError&) {
  }

  if (options_.breaker_threshold > 0) {
    Breaker& breaker = breakers_[from.value];
    // Past the threshold every further refusal re-opens the breaker (this
    // is also what ends a failed half-open probe); strikes saturate so one
    // useful reply is always enough to close it again.
    breaker.strikes = std::min(breaker.strikes + 1, options_.breaker_threshold);
    if (breaker.strikes >= options_.breaker_threshold) {
      if (breaker.open_until <= node_.transport().now()) breaker_trips_.inc();
      breaker.open_until = node_.transport().now() + options_.breaker_cooldown;
    }
  }
  return true;
}

SimDuration SecureStoreClient::take_overload_hint() {
  const SimDuration hint = overload_hint_;
  overload_hint_ = 0;
  return hint;
}

Error SecureStoreClient::round_error(std::size_t refused, net::QuorumOutcome outcome) const {
  if (refused > 0) return Error::kOverloaded;
  return outcome == net::QuorumOutcome::kTimeout ? Error::kTimeout
                                                 : Error::kInsufficientQuorum;
}

SecureStoreClient::Trace SecureStoreClient::begin_trace(std::string op) {
  // Every public operation opens exactly one trace, so this doubles as the
  // start-of-op hook: drop any ring a previous rejection stashed and any
  // retry-after hint a previous operation never consumed.
  wrong_shard_ring_.clear();
  overload_hint_ = 0;
  // The transport clock keeps span semantics identical across worlds:
  // virtual microseconds under the simulator, wall microseconds since
  // transport start on the thread/TCP transports.
  auto trace = obs::start_trace(
      node_.transport().registry(), std::move(op),
      [this] { return static_cast<std::uint64_t>(node_.transport().now()); });
  // Enter the operation into the distributed trace (subject to the event
  // log's enable/sampling knobs); its context then rides out with every
  // rpc the operation issues.
  trace->attach_root(node_.transport().events(), node_.id().value);
  return trace;
}

SimTime SecureStoreClient::op_deadline() const {
  return node_.transport().now() + config_.op_timeout;
}

SimDuration SecureStoreClient::round_budget(SimTime deadline) const {
  const SimTime now = node_.transport().now();
  // Clamp before subtracting: SimTime is unsigned, and a backoff sleep (or
  // a slow wall-clock dispatch on the threaded transports) can overshoot
  // the absolute deadline, so `deadline - now` would wrap to a huge round
  // timeout. Zero tells every attempt loop to fail the op with a deadline
  // error instead of issuing that round.
  if (now >= deadline) {
    deadline_exceeded_.inc();
    return 0;
  }
  return std::min<SimDuration>(options_.round_timeout, deadline - now);
}

SimDuration SecureStoreClient::retry_backoff(unsigned round) {
  if (options_.backoff_base == 0) return 0;
  double backoff = static_cast<double>(options_.backoff_base);
  const double cap = static_cast<double>(std::max<SimDuration>(options_.backoff_cap, 1));
  for (unsigned i = 0; i < round && backoff < cap; ++i) backoff *= options_.backoff_multiplier;
  const auto capped = static_cast<SimDuration>(std::min(backoff, cap));
  // Jitter in [capped/2, capped]: enough spread to desynchronize clients,
  // never less than half so the wait stays a real wait.
  return capped / 2 + rng_.next_below(capped / 2 + 1);
}

std::string SecureStoreClient::data_op_name(std::string_view verb) const {
  const char* protocol = "p3";
  if (options_.policy.sharing == SharingMode::kMultiWriter) {
    protocol = options_.policy.trust == ClientTrust::kByzantine ? "p6" : "p5";
  } else if (verb == "read") {
    protocol = "p4";
  }
  return std::string("client.") + protocol + "." + std::string(verb);
}

const Bytes* SecureStoreClient::writer_key(ClientId writer) const {
  const auto it = config_.client_keys.find(writer.value);
  return it != config_.client_keys.end() ? &it->second : nullptr;
}

std::size_t SecureStoreClient::write_set_size() const {
  const bool hardened = options_.policy.sharing == SharingMode::kMultiWriter &&
                        options_.policy.trust == ClientTrust::kByzantine;
  // Dynamic sizing applies only to the honest-client paths, where safety
  // rests on signatures and a too-small set risks only liveness (fixed by
  // escalation). The hardened §5.3 quorums and the b+1 agreement threshold
  // are load-bearing for safety and always use the static bound.
  if (hardened) return config_.data_quorum_byzantine();
  return effective_b() + 1;
}

// ---------------------------------------------------------------------------
// P1: context acquisition (Fig. 1).
// ---------------------------------------------------------------------------

void SecureStoreClient::connect(GroupId group, VoidCb done) {
  connect_attempt(group, /*round=*/0, op_deadline(), begin_trace("client.p1.connect"),
                  std::move(done));
}

void SecureStoreClient::connect_attempt(GroupId group, unsigned round, SimTime deadline,
                                        Trace trace, VoidCb done) {
  const SimDuration budget = round_budget(deadline);
  if (budget == 0) {
    trace->finish(false);
    done(VoidResult(Error::kTimeout, "operation deadline passed"));
    return;
  }
  const std::size_t quorum = config_.context_quorum();
  const std::size_t target_count =
      std::min<std::size_t>(config_.n, quorum + round * config_.read_escalation_step);

  ContextReadReq req;
  req.owner = client_id_;
  req.group = group;
  const Bytes body = req.serialize();

  // Candidates are collected UNVERIFIED and checked lazily, newest first,
  // so the best case costs exactly one signature verification (§6: "in the
  // best case, context acquisition requires just one signature
  // verification").
  auto candidates = std::make_shared<std::vector<StoredContext>>();
  auto replies = std::make_shared<std::size_t>(0);
  auto refused = std::make_shared<std::size_t>(0);
  const std::vector<NodeId> targets = pick_servers(target_count);
  const std::size_t target_total = targets.size();

  trace->phase("quorum");
  net::QuorumCall::start(
      node_, targets, net::MsgType::kContextRead, body,
      [this, candidates, replies, refused, target_total, group, quorum](
          NodeId from, net::MsgType type, BytesView resp_body) {
        if (note_wrong_shard(type, resp_body)) return true;
        if (note_overloaded(from, type, resp_body)) {
          // Fast refusal: when the refusals leave too few possible
          // repliers, the round cannot reach quorum — end it now instead
          // of burning the rest of the round timeout.
          return target_total - ++*refused < quorum;
        }
        ++*replies;
        try {
          ContextReadResp resp = ContextReadResp::deserialize(resp_body);
          if (resp.stored.has_value() && resp.stored->owner == client_id_ &&
              resp.stored->context.group() == group) {
            const bool duplicate = std::any_of(
                candidates->begin(), candidates->end(),
                [&](const StoredContext& c) { return c.context == resp.stored->context; });
            if (!duplicate) candidates->push_back(std::move(*resp.stored));
          }
        } catch (const DecodeError&) {
          // Faulty server sent garbage; still counts as a (useless) reply.
        }
        return *replies >= quorum;
      },
      [this, candidates, replies, refused, group, quorum, round, deadline, trace,
       done](net::QuorumOutcome outcome, std::size_t) {
        if (wrong_shard_pending()) {
          trace->finish(false);
          done(VoidResult(Error::kWrongShard, "server does not own this group's shard"));
          return;
        }
        if (*replies >= quorum) {
          trace->phase("verify");
          // One client's honest contexts are totally ordered by dominance,
          // so the pointwise timestamp sum is a valid newest-first sort
          // key; forged "newer" contexts fail verification and we fall
          // through to the next candidate.
          std::sort(candidates->begin(), candidates->end(),
                    [](const StoredContext& a, const StoredContext& b) {
                      auto weight = [](const StoredContext& c) {
                        std::uint64_t sum = 0;
                        for (const auto& [item, ts] : c.context.entries()) sum += ts.time;
                        return sum;
                      };
                      return weight(a) > weight(b);
                    });
          context_ = Context(group);
          for (const StoredContext& candidate : *candidates) {
            if (candidate.verify(keys_.public_key)) {
              context_ = candidate.context;
              break;
            }
          }
          connected_ = true;
          trace->finish(true);
          done(VoidResult{});
          return;
        }
        const SimDuration backoff = std::max(retry_backoff(round), take_overload_hint());
        if (round + 1 < options_.max_read_rounds &&
            node_.transport().now() + backoff < deadline) {
          trace->add("retries");
          node_.transport().schedule(backoff, [this, group, round, deadline, trace, done]() {
            connect_attempt(group, round + 1, deadline, trace, done);
          });
          return;
        }
        trace->finish(false);
        done(VoidResult(round_error(*refused, outcome), "context read quorum not reached"));
      },
      net::QuorumCall::Options{budget, trace->ctx()});
}

void SecureStoreClient::disconnect(VoidCb done) {
  disconnect_attempt(/*round=*/0, op_deadline(), begin_trace("client.p1.disconnect"),
                     std::move(done));
}

void SecureStoreClient::disconnect_attempt(unsigned round, SimTime deadline, Trace trace,
                                           VoidCb done) {
  const SimDuration budget = round_budget(deadline);
  if (budget == 0) {
    trace->finish(false);
    done(VoidResult(Error::kTimeout, "operation deadline passed"));
    return;
  }
  const std::size_t quorum = config_.context_quorum();
  const std::size_t target_count =
      std::min<std::size_t>(config_.n, quorum + round * config_.read_escalation_step);

  trace->phase("sign");
  StoredContext stored;
  stored.owner = client_id_;
  stored.context = context_;
  stored.sign(keys_.seed);

  ContextWriteReq req;
  req.stored = std::move(stored);
  const Bytes body = req.serialize();

  auto acks = std::make_shared<std::size_t>(0);
  auto refused = std::make_shared<std::size_t>(0);
  const std::vector<NodeId> targets = pick_servers(target_count);
  const std::size_t target_total = targets.size();
  trace->phase("quorum");
  net::QuorumCall::start(
      node_, targets, net::MsgType::kContextWrite, body,
      [this, acks, refused, target_total, quorum](NodeId from, net::MsgType type,
                                                  BytesView resp_body) {
        if (note_wrong_shard(type, resp_body)) return true;
        if (note_overloaded(from, type, resp_body)) {
          return target_total - ++*refused < quorum;
        }
        try {
          if (AckResp::deserialize(resp_body).ok) ++*acks;
        } catch (const DecodeError&) {
        }
        return *acks >= quorum;
      },
      [this, acks, refused, quorum, round, deadline, trace, done](net::QuorumOutcome outcome,
                                                                  std::size_t) {
        if (wrong_shard_pending()) {
          trace->finish(false);
          done(VoidResult(Error::kWrongShard, "server does not own this group's shard"));
          return;
        }
        if (*acks >= quorum) {
          connected_ = false;
          trace->finish(true);
          done(VoidResult{});
          return;
        }
        const SimDuration backoff = std::max(retry_backoff(round), take_overload_hint());
        if (round + 1 < options_.max_read_rounds &&
            node_.transport().now() + backoff < deadline) {
          trace->add("retries");
          node_.transport().schedule(backoff, [this, round, deadline, trace, done]() {
            disconnect_attempt(round + 1, deadline, trace, done);
          });
          return;
        }
        trace->finish(false);
        done(VoidResult(round_error(*refused, outcome), "context write quorum not reached"));
      },
      net::QuorumCall::Options{budget, trace->ctx()});
}

// ---------------------------------------------------------------------------
// P2: context reconstruction (§5.1).
// ---------------------------------------------------------------------------

void SecureStoreClient::reconstruct_context(GroupId group, VoidCb done) {
  // "These items must be read from all servers. Only the faulty servers may
  // choose not to respond": require n-b responses.
  const std::size_t needed = config_.n - config_.b;

  ReconstructReq req;
  req.group = group;
  const Bytes body = req.serialize();

  auto rebuilt = std::make_shared<Context>(group);
  auto replies = std::make_shared<std::size_t>(0);
  auto refused = std::make_shared<std::size_t>(0);
  const std::size_t target_total = config_.servers.size();

  auto trace = begin_trace("client.p2.reconstruct");
  trace->phase("quorum");
  net::QuorumCall::start(
      node_, config_.servers, net::MsgType::kReconstruct, body,
      [this, rebuilt, replies, refused, target_total, needed, group](
          NodeId from, net::MsgType type, BytesView resp_body) {
        if (note_wrong_shard(type, resp_body)) return true;
        if (note_overloaded(from, type, resp_body)) {
          return target_total - ++*refused < needed;
        }
        ++*replies;
        try {
          for (const WriteRecord& meta : ReconstructResp::deserialize(resp_body).metas) {
            if (meta.group != group) continue;
            const Bytes* key = writer_key(meta.writer);
            // "the latest valid timestamp for each data item is used":
            // validity = the writer's signature over the meta-data verifies.
            if (key != nullptr && meta.verify_meta(*key)) {
              rebuilt->advance(meta.item, meta.ts);
            }
          }
        } catch (const DecodeError&) {
        }
        return false;  // hear from as many servers as possible
      },
      [this, rebuilt, replies, refused, needed, trace, done](net::QuorumOutcome outcome,
                                                             std::size_t) {
        if (wrong_shard_pending()) {
          trace->finish(false);
          done(VoidResult(Error::kWrongShard, "server does not own this group's shard"));
          return;
        }
        if (*replies >= needed) {
          context_ = *rebuilt;
          connected_ = true;
          trace->finish(true);
          done(VoidResult{});
          return;
        }
        trace->finish(false);
        done(VoidResult(round_error(*refused, outcome), "reconstruction needs n-b responses"));
      },
      net::QuorumCall::Options{options_.round_timeout, trace->ctx()});
}

void SecureStoreClient::list_group(GroupId group, ListCb done) {
  const std::size_t needed = config_.n - config_.b;

  ReconstructReq req;
  req.group = group;
  const Bytes body = req.serialize();

  // item -> newest verified meta.
  auto newest = std::make_shared<std::map<ItemId, WriteRecord>>();
  auto replies = std::make_shared<std::size_t>(0);
  auto refused = std::make_shared<std::size_t>(0);
  const std::size_t target_total = config_.servers.size();

  auto trace = begin_trace("client.p2.list");
  trace->phase("quorum");
  net::QuorumCall::start(
      node_, config_.servers, net::MsgType::kReconstruct, body,
      [this, newest, replies, refused, target_total, needed, group](
          NodeId from, net::MsgType type, BytesView resp_body) {
        if (note_wrong_shard(type, resp_body)) return true;
        if (note_overloaded(from, type, resp_body)) {
          return target_total - ++*refused < needed;
        }
        ++*replies;
        try {
          for (const WriteRecord& meta : ReconstructResp::deserialize(resp_body).metas) {
            if (meta.group != group) continue;
            const Bytes* key = writer_key(meta.writer);
            if (key == nullptr || !meta.verify_meta(*key)) continue;
            auto [it, inserted] = newest->try_emplace(meta.item, meta);
            if (!inserted && it->second.ts < meta.ts) it->second = meta;
          }
        } catch (const DecodeError&) {
        }
        return false;
      },
      [this, newest, replies, refused, needed, trace, done](net::QuorumOutcome outcome,
                                                            std::size_t) {
        if (wrong_shard_pending()) {
          trace->finish(false);
          done(Result<std::vector<GroupEntry>>(Error::kWrongShard,
                                               "server does not own this group's shard"));
          return;
        }
        if (*replies < needed) {
          trace->finish(false);
          done(Result<std::vector<GroupEntry>>(round_error(*refused, outcome),
                                               "group listing needs n-b responses"));
          return;
        }
        std::vector<GroupEntry> entries;
        entries.reserve(newest->size());
        for (const auto& [item, meta] : *newest) {
          entries.push_back(GroupEntry{item, meta.ts, meta.writer});
        }
        trace->finish(true);
        done(Result<std::vector<GroupEntry>>(std::move(entries)));
      },
      net::QuorumCall::Options{options_.round_timeout, trace->ctx()});
}

// ---------------------------------------------------------------------------
// Writes (Fig. 2 write, §5.3 hardened write).
// ---------------------------------------------------------------------------

Timestamp SecureStoreClient::next_timestamp(ItemId item, BytesView value_digest) {
  Timestamp ts;
  // "increment t_j in X_i to current clock value" — and never backwards.
  const std::uint64_t previous = context_.get(item).time;
  ts.time = std::max(previous + 1, static_cast<std::uint64_t>(node_.transport().now()));
  if (options_.random_ts_increment) {
    // §5.2: "the writer can increase it on each write by some random amount.
    // That will ensure that others cannot guess how many times the data item
    // has been updated."
    ts.time += rng_.next_in_range(1, 1u << 20);
  }
  if (options_.policy.sharing == SharingMode::kMultiWriter) {
    ts.writer = client_id_;
    ts.digest = Bytes(value_digest.begin(), value_digest.end());
  }
  return ts;
}

void SecureStoreClient::write(ItemId item, BytesView value, VoidCb done) {
  auto trace = begin_trace(data_op_name("write"));
  trace->phase("sign");
  auto record = std::make_shared<WriteRecord>();
  record->item = item;
  record->group = options_.policy.group;
  record->model = options_.policy.model;
  record->writer = client_id_;
  record->value = options_.codec->encode(item, value);

  const Bytes digest = crypto::meter_digest(record->value);
  record->ts = next_timestamp(item, digest);

  if (options_.policy.model == ConsistencyModel::kCC) {
    // The context written with the value includes the new self entry
    // (Fig. 2: t_j is incremented before the write message is formed).
    Context writer_context = context_;
    writer_context.set(item, record->ts);
    record->writer_context = std::move(writer_context);
  } else {
    record->writer_context = Context(options_.policy.group);
  }

  record->sign(keys_.seed);

  auto shares = std::make_shared<std::vector<Bytes>>();
  send_write(record, write_set_size(), /*round=*/0, op_deadline(), shares, std::move(trace),
             std::move(done));
}

void SecureStoreClient::send_write(std::shared_ptr<WriteRecord> record,
                                   std::size_t target_count, unsigned round, SimTime deadline,
                                   std::shared_ptr<std::vector<Bytes>> shares, Trace trace,
                                   VoidCb done) {
  const SimDuration budget = round_budget(deadline);
  if (budget == 0) {
    trace->finish(false);
    done(VoidResult(Error::kTimeout, "operation deadline passed"));
    return;
  }
  const std::size_t quorum = write_set_size();

  WriteReq req;
  req.record = *record;
  req.token = options_.token;
  const Bytes body = req.serialize();

  auto acks = std::make_shared<std::size_t>(0);
  auto refused = std::make_shared<std::size_t>(0);
  const std::vector<NodeId> targets = pick_servers(target_count);
  const std::size_t target_total = targets.size();
  trace->phase("quorum");
  net::QuorumCall::start(
      node_, targets, net::MsgType::kWrite, body,
      [this, acks, refused, target_total, shares, quorum](NodeId from, net::MsgType type,
                                                          BytesView resp_body) {
        if (note_wrong_shard(type, resp_body)) return true;
        if (note_overloaded(from, type, resp_body)) {
          return target_total - ++*refused < quorum;
        }
        try {
          const WriteResp resp = WriteResp::deserialize(resp_body);
          if (resp.ok) {
            ++*acks;
            if (!resp.stability_share.empty()) shares->push_back(resp.stability_share);
          }
        } catch (const DecodeError&) {
        }
        return *acks >= quorum;
      },
      [this, record, target_count, round, deadline, shares, acks, refused, quorum, trace,
       done](net::QuorumOutcome /*outcome*/, std::size_t) {
        if (wrong_shard_pending()) {
          trace->finish(false);
          done(VoidResult(Error::kWrongShard, "server does not own this group's shard"));
          return;
        }
        if (*acks >= quorum) {
          trace->finish(true);
          finish_write(*record, done);
          if (options_.stability_gc && !shares->empty() &&
              shares->size() >= config_.stability_threshold()) {
            broadcast_stability(*record, *shares, trace->ctx());
          }
          return;
        }
        // Not enough acks: escalate to a larger server set, Fig. 2's
        // "contact additional servers".
        const SimDuration backoff = std::max(retry_backoff(round), take_overload_hint());
        if (round + 1 >= options_.max_read_rounds ||
            node_.transport().now() + backoff >= deadline) {
          trace->finish(false);
          done(VoidResult(*refused > 0 ? Error::kOverloaded : Error::kTimeout,
                          "write quorum not reached after escalation"));
          return;
        }
        trace->add("retries");
        shares->clear();
        const std::size_t next_targets =
            std::min<std::size_t>(config_.n, target_count + config_.read_escalation_step);
        node_.transport().schedule(
            backoff, [this, record, next_targets, round, deadline, shares, trace, done]() {
              send_write(record, next_targets, round + 1, deadline, shares, trace, done);
            });
      },
      net::QuorumCall::Options{budget, trace->ctx()});
}

void SecureStoreClient::finish_write(const WriteRecord& record, VoidCb done) {
  context_.advance(record.item, record.ts);
  done(VoidResult{});
}

void SecureStoreClient::broadcast_stability(const WriteRecord& record,
                                            std::vector<Bytes> shares,
                                            const obs::TraceContext& trace) {
  // The ack order matched pick_servers(), so shares pair with those ids in
  // order of arrival; re-derive signer ids by verification against the
  // known server keys. (Cheap relative to the write itself and only on the
  // §5.3 path.)
  crypto::MultisigCertificate cert(stability_statement(record.item, record.ts));
  for (const Bytes& share : shares) {
    for (const auto& [server, key] : config_.server_keys) {
      if (crypto::meter_verify(key, cert.statement(), share)) {
        cert.add_share(server, share);
        break;
      }
    }
  }
  if (cert.shares().size() < config_.stability_threshold()) return;

  StabilityMsg msg;
  msg.item = record.item;
  msg.ts = record.ts;
  msg.certificate = std::move(cert);
  const Bytes body = msg.serialize();
  for (const NodeId server : config_.servers) {
    node_.send_oneway(server, net::MsgType::kStability, body, trace);
  }
}

// ---------------------------------------------------------------------------
// Reads.
// ---------------------------------------------------------------------------

void SecureStoreClient::read(ItemId item, ReadCb done) {
  const bool hardened = options_.policy.sharing == SharingMode::kMultiWriter &&
                        options_.policy.trust == ClientTrust::kByzantine;
  auto trace = begin_trace(data_op_name("read"));
  if (hardened) {
    read_multi_writer(item, /*round=*/0, op_deadline(), std::move(trace), std::move(done));
  } else {
    read_single_writer(item, /*round=*/0, op_deadline(), std::move(trace), std::move(done));
  }
}

void SecureStoreClient::read_single_writer(ItemId item, unsigned round, SimTime deadline,
                                           Trace trace, ReadCb done) {
  const SimDuration budget = round_budget(deadline);
  if (budget == 0) {
    trace->finish(false);
    done(Result<ReadOutput>(Error::kTimeout, "operation deadline passed"));
    return;
  }
  // Fig. 2 phase 1: "send (uid(x_j), t_j) to b+1 or more servers" — each
  // escalation round widens the set.
  const std::size_t target_count = std::min<std::size_t>(
      config_.n, effective_b() + 1 + round * config_.read_escalation_step);

  MetaReq req;
  req.item = item;
  req.group = options_.policy.group;
  req.requester = client_id_;
  req.include_value = options_.inline_reads;
  req.token = options_.token;
  const Bytes body = req.serialize();

  // Replies are collected UNVERIFIED here; signatures are checked lazily,
  // best-candidate first, so the common case costs one verification —
  // Fig. 2 verifies only the value it accepts. Senders ride along for the
  // fault estimator's evidence feed.
  struct Advertised {
    WriteRecord record;
    NodeId from;
    bool value_included = false;
  };
  auto metas = std::make_shared<std::vector<Advertised>>();
  auto responders = std::make_shared<std::vector<NodeId>>();
  auto refused = std::make_shared<std::size_t>(0);
  auto targets = std::make_shared<std::vector<NodeId>>(pick_servers(target_count));
  trace->phase("quorum");
  net::QuorumCall::start(
      node_, *targets, net::MsgType::kMetaRequest, body,
      [this, metas, responders, refused, targets, item](NodeId from, net::MsgType type,
                                                        BytesView resp_body) {
        if (note_wrong_shard(type, resp_body)) return true;
        if (note_overloaded(from, type, resp_body)) {
          // A refusal is a response (not silence): the server is alive, so
          // it must not feed the estimator's silent-evidence path.
          responders->push_back(from);
          // The meta round is useful with even one real reply; only a
          // clean sweep of refusals ends it early.
          return ++*refused >= targets->size();
        }
        responders->push_back(from);
        note_responded(from);
        try {
          MetaResp resp = MetaResp::deserialize(resp_body);
          if (resp.meta.has_value() && resp.meta->item == item &&
              resp.meta->model == options_.policy.model &&
              writer_key(resp.meta->writer) != nullptr) {
            metas->push_back(Advertised{std::move(*resp.meta), from, resp.value_included});
          }
        } catch (const DecodeError&) {
          // Channels are authenticated (§4), so a malformed reply is
          // conclusive evidence of a faulty server.
          note_forgery(from);
        }
        return false;  // collect every reply in the round: we want max t_r
      },
      [this, metas, responders, refused, targets, item, round, deadline, trace,
       done](net::QuorumOutcome /*outcome*/, std::size_t) {
        if (wrong_shard_pending()) {
          trace->finish(false);
          done(Result<ReadOutput>(Error::kWrongShard,
                                  "server does not own this group's shard"));
          return;
        }
        trace->phase("verify");
        note_silent(*targets, *responders);
        // Multi-writer (honest) equivocation check. Unverified claims are
        // not enough to condemn a writer — a malicious server could frame
        // one — so an equivocating pair counts only if BOTH metas carry
        // valid writer signatures.
        for (std::size_t i = 0; i < metas->size(); ++i) {
          for (std::size_t j = i + 1; j < metas->size(); ++j) {
            const WriteRecord& a = (*metas)[i].record;
            const WriteRecord& b = (*metas)[j].record;
            if (!a.ts.equivocates(b.ts)) continue;
            if (a.verify_meta(*writer_key(a.writer)) &&
                b.verify_meta(*writer_key(b.writer))) {
              trace->add("equivocations_seen");
              trace->finish(false);
              done(Result<ReadOutput>(Error::kFaultyWriter,
                                      "equivocating timestamps in meta replies"));
              return;
            }
          }
        }

        // Fig. 2: t_r = highest timestamp among replies; proceed iff
        // t_r >= t_j (the client's context entry). Dedup identical claims.
        const Timestamp floor = context_.get(item);
        std::vector<Advertised> candidates;
        for (const Advertised& meta : *metas) {
          if (meta.record.ts < floor) continue;
          const bool duplicate =
              std::any_of(candidates.begin(), candidates.end(), [&](const Advertised& c) {
                return c.record.ts == meta.record.ts &&
                       c.record.value_digest == meta.record.value_digest;
              });
          if (duplicate) continue;
          candidates.push_back(meta);
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const Advertised& a, const Advertised& b) {
                    return newer(a.record, b.record);
                  });

        if (!candidates.empty()) {
          if (options_.inline_reads) {
            // Values rode along with the metas: verify best-first and
            // accept the first that proves out.
            for (const Advertised& candidate : candidates) {
              if (candidate.value_included &&
                  candidate.record.verify(*writer_key(candidate.record.writer))) {
                if (options_.read_repair) {
                  // Push the accepted record to responders that advertised
                  // something older (or nothing).
                  WriteReq repair;
                  repair.record = candidate.record;
                  repair.token = options_.token;
                  const Bytes repair_body = repair.serialize();
                  for (const NodeId responder : *responders) {
                    const bool lagging = std::none_of(
                        metas->begin(), metas->end(), [&](const Advertised& m) {
                          return m.from == responder && !(m.record.ts < candidate.record.ts);
                        });
                    if (lagging) {
                      node_.send_request(responder, net::MsgType::kWrite, repair_body,
                                         [](NodeId, net::MsgType, BytesView) {},
                                         trace->ctx());
                    }
                  }
                }
                accept_read(candidate.record, trace, done);
                return;
              }
              // A server advertising an unverifiable record is provably
              // faulty (correct servers validate before storing).
              note_forgery(candidate.from);
            }
            // Every advertised candidate was a lie: fall through to
            // escalation below.
          } else {
            const std::size_t fetch_targets =
                std::min<std::size_t>(config_.n, effective_b() + 1 +
                                                     round * config_.read_escalation_step);
            auto fetchable = std::make_shared<std::vector<WriteRecord>>();
            for (Advertised& candidate : candidates) {
              fetchable->push_back(std::move(candidate.record));
            }
            fetch_candidate(item, std::move(fetchable),
                            std::make_shared<std::vector<NodeId>>(pick_servers(fetch_targets)),
                            /*candidate_idx=*/0, /*server_idx=*/0, round, deadline, trace,
                            done);
            return;
          }
        }

        // Stale (or nothing at all): escalate or give up.
        const SimDuration backoff = std::max(retry_backoff(round), take_overload_hint());
        if (round + 1 < options_.max_read_rounds &&
            node_.transport().now() + backoff < deadline) {
          trace->add("retries");
          node_.transport().schedule(backoff, [this, item, round, deadline, trace, done]() {
            read_single_writer(item, round + 1, deadline, trace, done);
          });
          return;
        }
        trace->finish(false);
        if (metas->empty() && *refused > 0) {
          done(Result<ReadOutput>(Error::kOverloaded, "servers shed the read"));
          return;
        }
        done(Result<ReadOutput>(metas->empty() ? Error::kNotFound : Error::kStale,
                                metas->empty() ? "no server returned the item"
                                               : "all replies older than context"));
      },
      net::QuorumCall::Options{budget, trace->ctx()});
}

void SecureStoreClient::fetch_candidate(ItemId item,
                                        std::shared_ptr<std::vector<WriteRecord>> candidates,
                                        std::shared_ptr<std::vector<NodeId>> servers,
                                        std::size_t candidate_idx, std::size_t server_idx,
                                        unsigned round, SimTime deadline, Trace trace,
                                        ReadCb done) {
  if (candidate_idx >= candidates->size()) {
    // No candidate could be substantiated from this round's servers:
    // escalate (Fig. 2: "contact additional servers or try later").
    const SimDuration backoff = std::max(retry_backoff(round), take_overload_hint());
    if (round + 1 < options_.max_read_rounds &&
        node_.transport().now() + backoff < deadline) {
      trace->add("retries");
      node_.transport().schedule(backoff, [this, item, round, deadline, trace, done]() {
        read_single_writer(item, round + 1, deadline, trace, done);
      });
    } else {
      trace->finish(false);
      done(Result<ReadOutput>(Error::kStale, "no advertised value could be fetched"));
    }
    return;
  }
  if (server_idx >= servers->size()) {
    fetch_candidate(item, candidates, servers, candidate_idx + 1, 0, round, deadline, trace,
                    done);
    return;
  }
  const SimDuration budget = round_budget(deadline);
  if (budget == 0) {
    trace->finish(false);
    done(Result<ReadOutput>(Error::kTimeout, "operation deadline passed"));
    return;
  }

  const Timestamp target_ts = (*candidates)[candidate_idx].ts;

  ReadReq req;
  req.item = item;
  req.group = options_.policy.group;
  req.ts = target_ts;
  req.requester = client_id_;
  req.token = options_.token;
  const Bytes body = req.serialize();

  auto accepted = std::make_shared<std::optional<WriteRecord>>();
  trace->phase("fetch");
  net::QuorumCall::start(
      node_, {(*servers)[server_idx]}, net::MsgType::kRead, body,
      [this, accepted, item, target_ts](NodeId from, net::MsgType type, BytesView resp_body) {
        if (note_wrong_shard(type, resp_body)) return true;
        // A shed fetch just moves on to the next server; the breaker and
        // hint bookkeeping still run.
        if (note_overloaded(from, type, resp_body)) return true;
        try {
          ReadResp resp = ReadResp::deserialize(resp_body);
          if (resp.record.has_value() && resp.record->item == item &&
              resp.record->model == options_.policy.model &&
              !(resp.record->ts < target_ts)) {
            const Bytes* key = writer_key(resp.record->writer);
            // Full verification: meta signature AND value matches d(v) —
            // "accept v if the signature is valid" (Fig. 2).
            if (key != nullptr && resp.record->verify(*key)) {
              *accepted = std::move(*resp.record);
            }
          }
        } catch (const DecodeError&) {
        }
        return true;  // single-server call: a reply ends it either way
      },
      [this, accepted, item, candidates, servers, candidate_idx, server_idx, round, deadline,
       trace, done](net::QuorumOutcome /*outcome*/, std::size_t) {
        if (wrong_shard_pending()) {
          trace->finish(false);
          done(Result<ReadOutput>(Error::kWrongShard,
                                  "server does not own this group's shard"));
          return;
        }
        if (accepted->has_value()) {
          accept_read(**accepted, trace, done);
          return;
        }
        fetch_candidate(item, candidates, servers, candidate_idx, server_idx + 1, round,
                        deadline, trace, done);
      },
      net::QuorumCall::Options{budget, trace->ctx()});
}

void SecureStoreClient::accept_read(const WriteRecord& record, Trace trace, ReadCb done) {
  const auto decoded = options_.codec->decode(record.item, record.value);
  if (!decoded.has_value()) {
    trace->finish(false);
    done(Result<ReadOutput>(Error::kBadSignature, "value failed authenticated decryption"));
    return;
  }

  // Context evolution per Fig. 2: MRC advances only this item's entry; CC
  // additionally absorbs X_writer so causally preceding writes become
  // floors for future reads.
  if (options_.policy.model == ConsistencyModel::kCC) {
    context_.merge(record.writer_context);
  }
  context_.advance(record.item, record.ts);

  ReadOutput output;
  output.value = *decoded;
  output.ts = record.ts;
  output.writer = record.writer;
  trace->finish(true);
  done(Result<ReadOutput>(std::move(output)));
}

// ---------------------------------------------------------------------------
// §5.3 hardened multi-writer read: 2b+1 logs, accept the newest write that
// appears in b+1 of them.
// ---------------------------------------------------------------------------

void SecureStoreClient::read_multi_writer(ItemId item, unsigned round, SimTime deadline,
                                          Trace trace, ReadCb done) {
  const SimDuration budget = round_budget(deadline);
  if (budget == 0) {
    trace->finish(false);
    done(Result<ReadOutput>(Error::kTimeout, "operation deadline passed"));
    return;
  }
  const std::size_t target_count = std::min<std::size_t>(
      config_.n, config_.data_quorum_byzantine() + round * config_.read_escalation_step);

  LogReadReq req;
  req.item = item;
  req.group = options_.policy.group;
  req.requester = client_id_;
  req.token = options_.token;
  const Bytes body = req.serialize();

  struct Tally {
    WriteRecord record;
    std::size_t servers = 0;
  };
  auto tallies = std::make_shared<std::vector<Tally>>();
  auto faulty_votes = std::make_shared<std::size_t>(0);
  auto any_log_entry = std::make_shared<bool>(false);
  auto refused = std::make_shared<std::size_t>(0);
  const std::vector<NodeId> targets = pick_servers(target_count);
  const std::size_t target_total = targets.size();

  trace->phase("quorum");
  net::QuorumCall::start(
      node_, targets, net::MsgType::kLogRead, body,
      [this, tallies, faulty_votes, any_log_entry, refused, target_total, item](
          NodeId from, net::MsgType type, BytesView resp_body) {
        if (note_wrong_shard(type, resp_body)) return true;
        if (note_overloaded(from, type, resp_body)) {
          // b+1 matching logs become impossible once too many servers
          // refuse: end the round without waiting out the timeout.
          return target_total - ++*refused < config_.agreement_threshold();
        }
        try {
          LogReadResp resp = LogReadResp::deserialize(resp_body);
          if (resp.faulty_writer) ++*faulty_votes;
          // Count each distinct write at most once per server.
          std::vector<std::pair<Timestamp, Bytes>> seen;
          for (const WriteRecord& record : resp.records) {
            if (record.item != item || record.model != options_.policy.model) continue;
            *any_log_entry = true;
            const bool duplicate_in_reply =
                std::any_of(seen.begin(), seen.end(), [&](const auto& s) {
                  return s.first == record.ts && s.second == record.value_digest;
                });
            if (duplicate_in_reply) continue;
            seen.emplace_back(record.ts, record.value_digest);

            auto it = std::find_if(tallies->begin(), tallies->end(), [&](const Tally& t) {
              return t.record.ts == record.ts && t.record.value_digest == record.value_digest;
            });
            if (it == tallies->end()) {
              tallies->push_back(Tally{record, 1});
            } else {
              ++it->servers;
            }
          }
        } catch (const DecodeError&) {
        }
        return false;  // need the full 2b+1 round for the b+1 count
      },
      [this, tallies, faulty_votes, any_log_entry, refused, item, round, deadline, trace,
       done](net::QuorumOutcome /*outcome*/, std::size_t) {
        if (wrong_shard_pending()) {
          trace->finish(false);
          done(Result<ReadOutput>(Error::kWrongShard,
                                  "server does not own this group's shard"));
          return;
        }
        trace->phase("verify");
        // b+1 servers vouching for "this writer equivocated" means at least
        // one correct server saw it.
        if (*faulty_votes >= config_.agreement_threshold()) {
          trace->add("equivocations_seen");
          trace->finish(false);
          done(Result<ReadOutput>(Error::kFaultyWriter,
                                  "b+1 servers flagged the writer as equivocating"));
          return;
        }

        // "accept a value as valid only if b+1 or more servers reply with
        // the same value" — choose the newest such value at or above the
        // context floor.
        const Timestamp floor = context_.get(item);
        const WriteRecord* best = nullptr;
        for (const Tally& tally : *tallies) {
          if (tally.servers < config_.agreement_threshold()) continue;
          if (tally.record.ts < floor) continue;
          if (best == nullptr || best->ts < tally.record.ts) best = &tally.record;
        }
        if (best != nullptr) {
          // Server-side validation substitutes for a client signature check
          // here (§6: "Clients do not have to do signature verification for
          // a read now since non-malicious servers do the validation before
          // reporting") — b+1 matching logs include at least one honest one.
          accept_read(*best, trace, done);
          return;
        }

        const SimDuration backoff = std::max(retry_backoff(round), take_overload_hint());
        if (round + 1 < options_.max_read_rounds &&
            node_.transport().now() + backoff < deadline) {
          trace->add("retries");
          node_.transport().schedule(backoff, [this, item, round, deadline, trace, done]() {
            read_multi_writer(item, round + 1, deadline, trace, done);
          });
          return;
        }
        trace->finish(false);
        if (!*any_log_entry && *refused > 0) {
          done(Result<ReadOutput>(Error::kOverloaded, "servers shed the read"));
          return;
        }
        done(Result<ReadOutput>(*any_log_entry ? Error::kNoAgreement : Error::kNotFound,
                                *any_log_entry
                                    ? "no value matched in b+1 logs at or above the context"
                                    : "no server logged the item"));
      },
      net::QuorumCall::Options{budget, trace->ctx()});
}

}  // namespace securestore::core
