#include "core/group_key.h"

#include <stdexcept>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"

namespace securestore::core {

namespace {

/// The pairwise wrap key for (owner, member) at a given epoch.
Bytes wrap_key(BytesView shared_secret, GroupId group, std::uint32_t epoch,
               ClientId member) {
  Writer info;
  info.str("securestore.wrapkey.v1");
  info.u64(group.value);
  info.u32(epoch);
  info.u32(member.value);
  return crypto::hkdf_sha256(shared_secret, /*salt=*/{}, info.data(),
                             crypto::kChaChaKeySize);
}

Bytes wrap_aad(GroupId group, std::uint32_t epoch, ClientId member) {
  Writer aad;
  aad.u64(group.value);
  aad.u32(epoch);
  aad.u32(member.value);
  return aad.take();
}

}  // namespace

ItemId key_bundle_item(GroupId group) {
  if (group.value >> 56 != 0) {
    throw std::invalid_argument("key_bundle_item: group uid must fit in 56 bits");
  }
  // Reserved namespace bit 62 (bit 63 belongs to scattered fragments).
  return ItemId{group.value | (1ull << 62)};
}

Bytes KeyBundle::serialize() const {
  Writer w;
  w.u64(group.value);
  w.u32(epoch);
  w.bytes(owner_dh_public);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const WrappedKey& wrapped : members) {
    w.u32(wrapped.member.value);
    w.bytes(wrapped.nonce);
    w.bytes(wrapped.sealed);
  }
  return w.take();
}

KeyBundle KeyBundle::deserialize(BytesView data) {
  Reader r(data);
  KeyBundle bundle;
  bundle.group = GroupId{r.u64()};
  bundle.epoch = r.u32();
  bundle.owner_dh_public = r.bytes();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    WrappedKey wrapped;
    wrapped.member = ClientId{r.u32()};
    wrapped.nonce = r.bytes();
    wrapped.sealed = r.bytes();
    bundle.members.push_back(std::move(wrapped));
  }
  r.expect_end();
  return bundle;
}

GroupKeyOwner::GroupKeyOwner(GroupId group, crypto::DhKeyPair identity, Rng rng)
    : group_(group), identity_(std::move(identity)), rng_(std::move(rng)) {
  current_key_ = rng_.bytes(crypto::kChaChaKeySize);
  key_history_[epoch_] = current_key_;
}

void GroupKeyOwner::add_member(ClientId member, Bytes dh_public) {
  members_[member] = std::move(dh_public);
}

bool GroupKeyOwner::remove_member(ClientId member) {
  if (members_.erase(member) == 0) return false;
  rotate();  // future epochs must be unreadable to the departed member
  return true;
}

void GroupKeyOwner::rotate() {
  ++epoch_;
  current_key_ = rng_.bytes(crypto::kChaChaKeySize);
  key_history_[epoch_] = current_key_;
}

KeyBundle GroupKeyOwner::make_bundle() {
  KeyBundle bundle;
  bundle.group = group_;
  bundle.epoch = epoch_;
  bundle.owner_dh_public = identity_.public_key;
  for (const auto& [member, dh_public] : members_) {
    const Bytes shared = crypto::x25519_shared_secret(identity_.private_scalar, dh_public);
    WrappedKey wrapped;
    wrapped.member = member;
    wrapped.nonce = rng_.bytes(crypto::kChaChaNonceSize);
    wrapped.sealed = crypto::aead_seal(wrap_key(shared, group_, epoch_, member),
                                       wrapped.nonce, wrap_aad(group_, epoch_, member),
                                       current_key_);
    bundle.members.push_back(std::move(wrapped));
  }
  return bundle;
}

std::shared_ptr<EpochCodec> GroupKeyOwner::make_codec() {
  auto codec = std::make_shared<EpochCodec>(group_, rng_.fork());
  for (const auto& [epoch, key] : key_history_) codec->add_epoch(epoch, key);
  return codec;
}

std::optional<std::pair<std::uint32_t, Bytes>> unwrap_bundle(const KeyBundle& bundle,
                                                             ClientId self,
                                                             BytesView own_dh_private) {
  for (const WrappedKey& wrapped : bundle.members) {
    if (wrapped.member != self) continue;
    try {
      const Bytes shared =
          crypto::x25519_shared_secret(own_dh_private, bundle.owner_dh_public);
      const auto key = crypto::aead_open(
          wrap_key(shared, bundle.group, bundle.epoch, self), wrapped.nonce,
          wrap_aad(bundle.group, bundle.epoch, self), wrapped.sealed);
      if (!key.has_value()) return std::nullopt;
      return std::make_pair(bundle.epoch, *key);
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace securestore::core
