#include "core/fault_estimator.h"

#include <algorithm>

namespace securestore::core {

void FaultEstimator::report_hard_evidence(NodeId server) {
  hard_faulty_.insert(server);
  soft_strikes_.erase(server);
}

void FaultEstimator::report_soft_evidence(NodeId server) {
  if (hard_faulty_.contains(server)) return;
  ++soft_strikes_[server];
}

void FaultEstimator::report_good_interaction(NodeId server) {
  const auto it = soft_strikes_.find(server);
  if (it == soft_strikes_.end()) return;
  if (it->second <= 1) {
    soft_strikes_.erase(it);
  } else {
    --it->second;
  }
}

std::size_t FaultEstimator::believed_faulty() const {
  std::size_t count = hard_faulty_.size();
  for (const auto& [server, strikes] : soft_strikes_) {
    if (strikes >= config_.soft_strikes) ++count;
  }
  return count;
}

std::uint32_t FaultEstimator::estimated_b() const {
  const auto faulty = static_cast<std::uint32_t>(believed_faulty());
  return std::clamp(faulty, config_.b_min, config_.b_max);
}

bool FaultEstimator::is_distrusted(NodeId server) const {
  if (hard_faulty_.contains(server)) return true;
  const auto it = soft_strikes_.find(server);
  return it != soft_strikes_.end() && it->second >= config_.soft_strikes;
}

}  // namespace securestore::core
