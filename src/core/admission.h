// Server-side admission control (DESIGN.md §13).
//
// Under open-loop overload the offered load does not slow down when the
// system does, so queues grow without bound and every request — admitted or
// not — times out: queueing collapse. The defense is to shed work *before*
// queues grow: the server samples live pressure signals (delivery-ring /
// service-queue backlog, WAL append latency, storage-engine memtable and
// compaction debt) and, past a high watermark, refuses new client requests
// with `kOverloaded` plus a signed retry-after hint. Quorum-critical
// traffic — gossip anti-entropy, stability certificates, responses to
// rounds already in flight — is never shed, so shedding degrades
// throughput, never safety (PoWerStore's robustness framing: guarantees
// must hold under worst-case conditions, and honest-client overload is a
// worst-case condition).
//
// Hysteresis: shedding latches on when ANY signal crosses its high
// watermark and off only when ALL signals fall below their low watermarks,
// so the controller does not flap at the boundary and admitted requests see
// a drained system, not one hovering at the cliff.
#pragma once

#include <cstdint>

#include "storage/engine.h"
#include "util/time.h"

namespace securestore::core {

/// One sample of everything the controller watches. The server assembles
/// this per evaluation from the transport, its WAL latency EWMA and the
/// storage engine (all signals already exist; admission only reads them).
struct AdmissionSignals {
  /// Inbound messages accepted for this node but not yet delivered
  /// (delivery-ring occupancy on real transports, modeled service queue
  /// under the simulator).
  std::size_t net_backlog = 0;
  /// Exponentially-weighted moving average of WAL append latency (wall µs).
  double wal_append_ewma_us = 0;
  /// Memtable fill and compaction debt; zeros for the in-memory engine.
  storage::StorageEngine::Pressure engine;
};

class AdmissionController {
 public:
  struct Options {
    /// Master switch; off restores the pre-§13 always-admit behavior.
    bool enabled = true;
    /// Network backlog hysteresis band, in queued messages. The defaults
    /// sit far above anything a healthy deployment reaches (the delivery
    /// ring holds 1024) and well below the point where every queued
    /// request is already doomed to time out.
    std::size_t net_backlog_high = 192;
    std::size_t net_backlog_low = 48;
    /// WAL append-latency EWMA band (wall µs). Appends are normally tens
    /// of microseconds; a persistent multi-millisecond average means the
    /// disk is the bottleneck and acks are lying about responsiveness.
    double wal_append_high_us = 50'000;
    double wal_append_low_us = 10'000;
    /// EWMA smoothing factor for WAL samples (weight of the new sample).
    double wal_ewma_alpha = 0.1;
    /// Engine pressure: shed when the memtable exceeds this multiple of
    /// its flush budget (flush is not keeping up) ...
    double memtable_overrun_high = 4.0;
    double memtable_overrun_low = 1.5;
    /// ... or when compaction is this many L0 runs past its trigger.
    std::uint64_t compaction_lag_high = 8;
    std::uint64_t compaction_lag_low = 2;
    /// Retry-after hint band. The hint scales with how far past the high
    /// watermark the worst signal is; clients clamp it again on their side
    /// so a Byzantine server cannot stall anyone regardless.
    SimDuration retry_after_min = milliseconds(2);
    SimDuration retry_after_max = milliseconds(200);
  };

  explicit AdmissionController(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Feeds one WAL append latency sample (wall µs) into the EWMA.
  void note_wal_append(double us) {
    wal_ewma_us_ += options_.wal_ewma_alpha * (us - wal_ewma_us_);
  }
  double wal_append_ewma_us() const { return wal_ewma_us_; }

  /// Re-evaluates the hysteresis state against fresh signals. True = shed
  /// new client work (callers still admit quorum-critical traffic).
  bool should_shed(const AdmissionSignals& signals);

  /// Latched state from the last evaluation.
  bool overloaded() const { return overloaded_; }

  /// Retry-after hint for a shed request, scaled by the severity of the
  /// last evaluation (how far past its high watermark the worst signal
  /// sits) and clamped to [retry_after_min, retry_after_max]. Quantized to
  /// a power-of-two microsecond bucket so the server can cache one
  /// signature per distinct hint instead of signing per refusal.
  std::uint32_t retry_after_us() const;

  /// Evaluations that decided to shed / total evaluations (diagnostics).
  std::uint64_t shed_decisions() const { return shed_decisions_; }

 private:
  Options options_;
  double wal_ewma_us_ = 0;
  bool overloaded_ = false;
  double severity_ = 0;  // worst signal / its high watermark, last eval
  std::uint64_t shed_decisions_ = 0;
};

}  // namespace securestore::core
