// Wire messages of the secure store protocols (Fig. 1, Fig. 2, §5.3).
//
// Every struct (de)serializes through the canonical Writer/Reader; decode
// throws DecodeError on malformed input, which request handlers translate
// into a dropped message.
#pragma once

#include <optional>
#include <vector>

#include "core/auth.h"
#include "core/record.h"
#include "crypto/multisig.h"
#include "util/serial.h"

namespace securestore::core {

namespace detail {
void encode_optional_token(Writer& w, const std::optional<AuthToken>& token);
std::optional<AuthToken> decode_optional_token(Reader& r);
}  // namespace detail

/// "request C_i's context associated with X" (Fig. 1).
struct ContextReadReq {
  ClientId owner{};
  GroupId group{};

  Bytes serialize() const;
  static ContextReadReq deserialize(BytesView data);
};

struct ContextReadResp {
  std::optional<StoredContext> stored;  // nullopt: server has no context

  Bytes serialize() const;
  static ContextReadResp deserialize(BytesView data);
};

/// "send {X_i, {X_i}_{K_i^-1}} to ⌈(n+b+1)/2⌉ servers" (Fig. 1).
struct ContextWriteReq {
  StoredContext stored;

  Bytes serialize() const;
  static ContextWriteReq deserialize(BytesView data);
};

struct AckResp {
  bool ok = false;

  Bytes serialize() const;
  static AckResp deserialize(BytesView data);
};

/// Phase 1 of the Fig. 2 read: "send (uid(x_j), t_j) to b+1 or more
/// servers; receive replies that include the meta-data of x_j".
struct MetaReq {
  ItemId item{};
  /// The item's group. Carried so a sharded server can ownership-check the
  /// request against its hash ring even when it has never seen the item
  /// (a misrouted request must fail kWrongShard, not look like kNotFound).
  GroupId group{};
  ClientId requester{};
  /// When set, the server returns the full record (value included) so the
  /// best case needs no second phase — §6: "in the best case, the message
  /// cost and response time of read operations could also be the same as
  /// write operations".
  bool include_value = false;
  std::optional<AuthToken> token;

  Bytes serialize() const;
  static MetaReq deserialize(BytesView data);
};

struct MetaResp {
  bool faulty_writer = false;
  /// True iff `meta` carries the value. An explicit flag rather than
  /// "value non-empty": the empty value is a perfectly valid value.
  bool value_included = false;
  std::optional<WriteRecord> meta;  // value stripped unless value_included

  Bytes serialize() const;
  static MetaResp deserialize(BytesView data);
};

/// Phase 2: fetch the value from the chosen server.
struct ReadReq {
  ItemId item{};
  GroupId group{};  // for shard ownership checks, as in MetaReq
  Timestamp ts;     // the timestamp the client selected in phase 1
  ClientId requester{};
  std::optional<AuthToken> token;

  Bytes serialize() const;
  static ReadReq deserialize(BytesView data);
};

struct ReadResp {
  bool faulty_writer = false;
  std::optional<WriteRecord> record;

  Bytes serialize() const;
  static ReadResp deserialize(BytesView data);
};

struct WriteReq {
  WriteRecord record;
  std::optional<AuthToken> token;

  Bytes serialize() const;
  static WriteReq deserialize(BytesView data);
};

/// Write ack. For multi-writer groups the server attaches its stability
/// share: its signature over the stability statement for this write, which
/// the client aggregates into a 2b+1 certificate for log pruning (§5.3).
struct WriteResp {
  bool ok = false;
  Bytes stability_share;

  Bytes serialize() const;
  static WriteResp deserialize(BytesView data);
};

/// §5.3 read: request the recent-writes log from 2b+1 servers.
struct LogReadReq {
  ItemId item{};
  GroupId group{};  // for shard ownership checks, as in MetaReq
  ClientId requester{};
  std::optional<AuthToken> token;

  Bytes serialize() const;
  static LogReadReq deserialize(BytesView data);
};

struct LogReadResp {
  bool faulty_writer = false;
  std::vector<WriteRecord> records;  // newest first, values included

  Bytes serialize() const;
  static LogReadResp deserialize(BytesView data);
};

/// Context reconstruction (§5.1): all current meta records of a group.
struct ReconstructReq {
  GroupId group{};

  Bytes serialize() const;
  static ReconstructReq deserialize(BytesView data);
};

struct ReconstructResp {
  std::vector<WriteRecord> metas;

  Bytes serialize() const;
  static ReconstructResp deserialize(BytesView data);
};

/// One-way stability notice: the certificate that lets servers prune logs.
struct StabilityMsg {
  ItemId item{};
  Timestamp ts;
  crypto::MultisigCertificate certificate;

  Bytes serialize() const;
  static StabilityMsg deserialize(BytesView data);
};

/// The canonical statement a stability share/certificate signs.
Bytes stability_statement(ItemId item, const Timestamp& ts);

/// Body of a `kOverloaded` refusal (PROTOCOL.md §12): the shedding server's
/// retry-after hint, signed with its server key so the hint is attributable.
/// Clients clamp the hint regardless — a Byzantine server must not be able
/// to stall clients — so the signature's job is making shed decisions
/// non-repudiable in audits, not making the hint trustworthy.
///
/// Framing is version-gated like the trace-context suffix (PROTOCOL.md
/// §1b): deserialize reads the v1 fields and ignores any trailing bytes, so
/// future versions can append without breaking v1 receivers.
struct OverloadedResp {
  std::uint32_t retry_after_us = 0;
  Bytes signature;  // server key over overload_statement(retry_after_us)

  Bytes serialize() const;
  static OverloadedResp deserialize(BytesView data);
};

/// The canonical statement an overload refusal signs.
Bytes overload_statement(std::uint32_t retry_after_us);

}  // namespace securestore::core
