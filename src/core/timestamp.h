// Timestamps (§4.1, §5.3).
//
// A timestamp uniquely identifies a write. For non-shared and single-writer
// data it is simply a version number (`time`) that the writer increases
// monotonically. For multi-writer data the paper extends it to a 3-tuple
// (time, uid(C_i), d(v)):
//  * the writer uid breaks ties between independent writers and is bound to
//    the signing key, so a malicious client cannot stamp another's uid;
//  * the value digest prevents a malicious client from reusing one
//    timestamp for two different values — two timestamps equal in (time,
//    uid) but different in digest expose the writer as faulty
//    (equivocation), and readers of the item are warned.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/serial.h"

namespace securestore::core {

struct Timestamp {
  std::uint64_t time = 0;
  ClientId writer{};  // ClientId{0} in single-writer deployments
  Bytes digest;       // d(v); empty in single-writer deployments

  bool is_zero() const { return time == 0; }

  /// The paper's order: by time, then writer uid. Digest intentionally does
  /// NOT participate in ordering — equal (time, uid) with different digests
  /// is not an order relation but evidence of a faulty writer; test with
  /// `equivocates`.
  std::strong_ordering operator<=>(const Timestamp& other) const {
    if (const auto c = time <=> other.time; c != 0) return c;
    return writer <=> other.writer;
  }
  bool operator==(const Timestamp& other) const {
    return time == other.time && writer == other.writer && digest == other.digest;
  }

  /// True iff the two timestamps expose the writer as faulty: same (time,
  /// uid) but different value digests (§5.3).
  bool equivocates(const Timestamp& other) const {
    return time == other.time && writer == other.writer && digest != other.digest;
  }

  void encode(Writer& w) const;
  static Timestamp decode(Reader& r);
};

std::string to_string(const Timestamp& ts);

}  // namespace securestore::core
