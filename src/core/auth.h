// Capability-style authorization tokens.
//
// The paper assumes "a secure authorization mechanism in place. A non-faulty
// server does not accept a write or a read request from an unauthorized
// client... effected by using authorization tokens issued to clients by some
// secure authorization service" (§4). This is that stand-in service: a
// well-known authority key signs (client, group, rights, expiry) capability
// tokens; servers verify them on each request when authorization is enabled.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/serial.h"
#include "util/time.h"

namespace securestore::core {

enum class Rights : std::uint8_t {
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

/// True iff `granted` covers `needed`.
bool rights_cover(Rights granted, Rights needed);

struct AuthToken {
  ClientId client{};
  GroupId group{};
  Rights rights = Rights::kRead;
  SimTime expiry = 0;  // 0 = never expires
  Bytes signature;

  Bytes signed_payload() const;
  void encode(Writer& w) const;
  static AuthToken decode(Reader& r);
};

/// The issuing side of the authorization service.
class Authorizer {
 public:
  explicit Authorizer(Bytes authority_seed) : seed_(std::move(authority_seed)) {}

  AuthToken issue(ClientId client, GroupId group, Rights rights, SimTime expiry = 0) const;

 private:
  Bytes seed_;
};

/// The verifying side (runs at each server).
class TokenVerifier {
 public:
  explicit TokenVerifier(Bytes authority_public_key) : key_(std::move(authority_public_key)) {}

  /// Checks signature, principal, group, rights and expiry.
  bool check(const std::optional<AuthToken>& token, ClientId client, GroupId group,
             Rights needed, SimTime now) const;

 private:
  Bytes key_;
};

}  // namespace securestore::core
