// SecureStoreClient: the active party of every protocol.
//
// "We propose an approach in which servers are primarily repositories of
// data, and clients are responsible for accessing consistent values of
// data items" (§7). The client owns:
//   * its context X_i and its evolution on reads/writes (Fig. 2),
//   * session management: connect/disconnect = context acquisition/store
//     with ⌈(n+b+1)/2⌉ quorums (Fig. 1, protocol P1),
//   * context reconstruction from all servers after a crash (P2),
//   * single-writer reads/writes with b+1 sets (P3/P4),
//   * multi-writer reads/writes: 3-tuple timestamps (P5) and, under
//     Byzantine clients, 2b+1 sets with b+1-matching reads, plus the
//     stability certificates that let servers prune logs (P6),
//   * confidentiality: value codec + random timestamp increments (P7).
//
// All operations are asynchronous (callback-based, driven by the simulated
// event loop); `SyncClient` in sync.h offers the blocking facade used by
// tests and examples.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/confidential.h"
#include "core/config.h"
#include "core/fault_estimator.h"
#include "core/messages.h"
#include "crypto/keys.h"
#include "net/quorum.h"
#include "net/rpc.h"
#include "obs/trace.h"
#include "util/result.h"
#include "util/rng.h"

namespace securestore::core {

/// A successful read: the (decoded) value plus the meta the client verified.
struct ReadOutput {
  Bytes value;
  Timestamp ts;
  ClientId writer{};
};

/// One entry of a group listing.
struct GroupEntry {
  ItemId item{};
  Timestamp ts;
  ClientId writer{};
};

class SecureStoreClient {
 public:
  struct Options {
    GroupPolicy policy;
    /// Attached to data requests when the deployment requires authorization.
    std::optional<AuthToken> token;
    /// Value confidentiality; defaults to plaintext.
    std::shared_ptr<ValueCodec> codec;
    /// §5.2 privacy knob: advance timestamps by a random amount so servers
    /// cannot count updates. Single-writer only.
    bool random_ts_increment = false;
    /// Reads ask the meta round to include values, so the best case is one
    /// round trip and one signature verification — §6: "the message cost
    /// and response time of read operations could also be the same as
    /// write operations". Disable for the Fig. 2 literal two-phase read,
    /// which ships the (possibly large) value only once, from the chosen
    /// server.
    bool inline_reads = true;
    /// Per-round deadline for quorum calls, further capped by whatever
    /// remains of the whole operation's deadline (StoreConfig::op_timeout).
    SimDuration round_timeout = seconds(1);
    /// Stale reads escalate by config.read_escalation_step servers per
    /// round, up to this many rounds (Fig. 2: "contact additional
    /// servers"), then fail with kStale.
    unsigned max_read_rounds = 3;
    /// Failed quorum rounds wait before retrying: capped exponential
    /// backoff (base · multiplier^round, at most cap) with seeded jitter in
    /// [backoff/2, backoff], so a degraded deployment sheds load instead of
    /// hammering sick servers in a tight loop — and concurrent clients
    /// desynchronize. Deterministic per client seed. backoff_base = 0
    /// disables the wait (the pre-backoff behavior).
    SimDuration backoff_base = milliseconds(10);
    SimDuration backoff_cap = milliseconds(640);
    double backoff_multiplier = 2.0;
    /// P6: broadcast stability certificates after multi-writer writes so
    /// servers can garbage collect logs.
    bool stability_gc = true;
    /// Read repair: when an (inline) read observes servers lagging behind
    /// the value it accepted, push the signed record to them. Complements
    /// server-side gossip with reader-driven dissemination — most useful
    /// when gossip is slow or off. Off by default (the paper's
    /// dissemination is purely server-side).
    bool read_repair = false;
    /// Overload cooperation (DESIGN.md §13). kOverloaded refusals are
    /// counted separately from timeouts (`client.refused`) and the signed
    /// retry-after hint stretches the next retry backoff — clamped to this
    /// bound, so a Byzantine server cannot stall the client, and always
    /// subject to the absolute op deadline.
    SimDuration retry_after_clamp = milliseconds(500);
    /// Per-server circuit breaker: after this many *consecutive* overload
    /// refusals the server is demoted out of first-choice quorum picks (it
    /// stays an escalation fallback, like an estimator-distrusted server)
    /// for `breaker_cooldown`; the first pick after the cooldown is the
    /// half-open probe that decides whether it rejoins or re-opens.
    /// breaker_threshold = 0 disables the breaker.
    unsigned breaker_threshold = 3;
    SimDuration breaker_cooldown = milliseconds(200);
    /// Dynamic Byzantine quorums (§3, [Alvisi et al. DSN'00]): when set,
    /// data sets are sized f̂+1 (or 2f̂+1) from the fault estimator instead
    /// of the static bound b, shrinking to b_min+1 in fault-free weather
    /// and growing back as evidence of misbehavior accumulates. Context
    /// quorums keep the static bound (their intersection argument needs it).
    std::optional<FaultEstimator::Config> dynamic_quorums;
  };

  SecureStoreClient(net::Transport& transport, NodeId network_id, ClientId client_id,
                    crypto::KeyPair keys, StoreConfig config, Options options, Rng rng);

  using VoidCb = std::function<void(VoidResult)>;
  using ReadCb = std::function<void(Result<ReadOutput>)>;

  /// P1 (Fig. 1): acquire the latest signed context for `group` from a
  /// ⌈(n+b+1)/2⌉ quorum. A fresh (never stored) context yields an empty X_i.
  void connect(GroupId group, VoidCb done);

  /// P1 (Fig. 1): sign and store the current context at ⌈(n+b+1)/2⌉ servers.
  void disconnect(VoidCb done);

  /// P2 (§5.1): rebuild the context from the timestamps of all data items
  /// in the group, read from all servers — the recovery path when the last
  /// session died before writing its context back.
  void reconstruct_context(GroupId group, VoidCb done);

  /// Browses a group: the items it contains with their newest verified
  /// timestamps and writers, gathered from an all-server sweep (the same
  /// collection pass as reconstruction, without touching the session
  /// context). Useful for discovering uids before reading.
  using ListCb = std::function<void(Result<std::vector<GroupEntry>>)>;
  void list_group(GroupId group, ListCb done);

  /// P3/P5/P6 write (Fig. 2 / §5.3).
  void write(ItemId item, BytesView value, VoidCb done);

  /// P4/P6 read (Fig. 2 / §5.3).
  void read(ItemId item, ReadCb done);

  ClientId client_id() const { return client_id_; }
  const Context& context() const { return context_; }
  Context& mutable_context() { return context_; }
  bool connected() const { return connected_; }
  const StoreConfig& config() const { return config_; }
  const Options& options() const { return options_; }

  /// Test hook: fixes the order in which servers are picked for data
  /// operations (defaults to a seeded shuffle).
  void set_server_preference(std::vector<NodeId> order);

  /// The dynamic-quorum estimator (null unless Options::dynamic_quorums).
  const FaultEstimator* fault_estimator() const { return estimator_ ? &*estimator_ : nullptr; }

  /// Swaps the value codec — the key-change step of the §5.2 re-encryption
  /// cycle (see rotate.h for the full read/re-encrypt/write-back workflow).
  void set_codec(std::shared_ptr<ValueCodec> codec);

  /// Sharded deployments (DESIGN.md §11): when an operation failed with
  /// kWrongShard, this returns the signed ring state the rejecting server
  /// attached (serialized shard::SignedRingState) and clears it. The core
  /// client does not interpret the bytes — verification and re-routing
  /// belong to shard::ShardedClient, which owns the ring authority key.
  Bytes take_wrong_shard_ring() { return std::move(wrong_shard_ring_); }

  /// Whether the per-server circuit breaker currently demotes `server`
  /// (DESIGN.md §13). Test/bench introspection.
  bool breaker_open(NodeId server) const;

 private:
  using Trace = std::shared_ptr<obs::OpTrace>;

  /// Opens an OpTrace on the transport clock (virtual under sim, wall on
  /// real transports). `op` is the full metric prefix, e.g. "client.p4.read".
  Trace begin_trace(std::string op);
  /// The protocol number the group policy routes `verb` to: p3/p4 for
  /// single-writer write/read, p5 for honest multi-writer, p6 for the §5.3
  /// Byzantine-client path. Returns e.g. "client.p6.write".
  std::string data_op_name(std::string_view verb) const;

  // Retry discipline: every operation carries one absolute deadline
  // (now + config.op_timeout at the start of the op). Each quorum round's
  // timeout is the smaller of round_timeout and what remains of the
  // deadline; failed rounds wait retry_backoff() before going again.

  /// The absolute deadline for an operation starting now.
  SimTime op_deadline() const;
  /// This round's quorum-call timeout: min(round_timeout, deadline - now);
  /// 0 when the deadline has already passed (the round must not start).
  SimDuration round_budget(SimTime deadline) const;
  /// Capped exponential backoff with seeded jitter before retrying after
  /// `round` failed (0-based). Consumes one rng draw.
  SimDuration retry_backoff(unsigned round);

  // Session helpers: like data ops, context ops start with the exact §6
  // quorum and escalate to more servers when members fail to respond.
  void connect_attempt(GroupId group, unsigned round, SimTime deadline, Trace trace,
                       VoidCb done);
  void disconnect_attempt(unsigned round, SimTime deadline, Trace trace, VoidCb done);

  // Write path helpers.
  Timestamp next_timestamp(ItemId item, BytesView value_digest);
  void send_write(std::shared_ptr<WriteRecord> record, std::size_t target_count,
                  unsigned round, SimTime deadline, std::shared_ptr<std::vector<Bytes>> shares,
                  Trace trace, VoidCb done);
  void finish_write(const WriteRecord& record, VoidCb done);
  void broadcast_stability(const WriteRecord& record, std::vector<Bytes> shares,
                           const obs::TraceContext& trace);

  // Read paths.
  void read_single_writer(ItemId item, unsigned round, SimTime deadline, Trace trace,
                          ReadCb done);
  /// Fig. 2 phase 2: fetch the value for candidates[candidate_idx] from
  /// servers[server_idx], falling through servers then candidates then
  /// escalation rounds.
  void fetch_candidate(ItemId item, std::shared_ptr<std::vector<WriteRecord>> candidates,
                       std::shared_ptr<std::vector<NodeId>> servers, std::size_t candidate_idx,
                       std::size_t server_idx, unsigned round, SimTime deadline, Trace trace,
                       ReadCb done);
  void read_multi_writer(ItemId item, unsigned round, SimTime deadline, Trace trace,
                         ReadCb done);

  void accept_read(const WriteRecord& record, Trace trace, ReadCb done);

  /// kWrongShard interception, checked first in every quorum reply handler:
  /// a misroute rejection ends the operation (returning true finishes the
  /// quorum call), stashing the attached ring for take_wrong_shard_ring().
  bool note_wrong_shard(net::MsgType type, BytesView resp_body);
  bool wrong_shard_pending() const { return !wrong_shard_ring_.empty(); }

  /// kOverloaded interception (DESIGN.md §13), checked right after
  /// note_wrong_shard in every reply handler. On a refusal it counts
  /// `client.refused`, feeds the circuit breaker, verifies + clamps the
  /// retry-after hint, and returns true — the caller then decides whether
  /// the round is still winnable. Any other reply closes the sender's
  /// breaker (the server is answering again) and returns false.
  bool note_overloaded(NodeId from, net::MsgType type, BytesView resp_body);
  /// The largest clamped retry-after hint seen since the last call (or op
  /// start); consumed by the retry scheduling that honors it.
  SimDuration take_overload_hint();
  /// Picks the failure error for a quorum round: refusals dominate (the
  /// round failed because servers shed, not because they were silent).
  Error round_error(std::size_t refused, net::QuorumOutcome outcome) const;

  std::vector<NodeId> pick_servers(std::size_t count, std::size_t skip = 0) const;
  const Bytes* writer_key(ClientId writer) const;
  std::size_t write_set_size() const;
  /// The effective fault bound: estimator's f̂ when dynamic quorums are on,
  /// otherwise the static b.
  std::uint32_t effective_b() const;
  // Evidence feeds for the estimator (no-ops when it is off).
  void note_responded(NodeId server);
  void note_silent(const std::vector<NodeId>& targets,
                   const std::vector<NodeId>& responders);
  void note_forgery(NodeId server);

  net::RpcNode node_;
  ClientId client_id_;
  crypto::KeyPair keys_;
  StoreConfig config_;
  Options options_;
  Rng rng_;
  Context context_;
  bool connected_ = false;
  std::vector<NodeId> server_order_;
  std::optional<FaultEstimator> estimator_;
  // Fault-suspicion accounting, counted whether or not the estimator is on.
  obs::Counter& fault_silent_;
  obs::Counter& fault_forgery_;
  /// Operations abandoned because the whole-op deadline passed (typically a
  /// backoff sleep overshooting it); the round budget clamps to zero and
  /// the op fails with kTimeout instead of issuing a wrapped-around round.
  obs::Counter& deadline_exceeded_;
  /// kOverloaded refusals, counted separately from timeouts.
  obs::Counter& refused_;
  /// Breaker transitions to open (a drowning replica got demoted).
  obs::Counter& breaker_trips_;
  /// The ring bytes of the last kWrongShard rejection; cleared when a new
  /// operation begins and by take_wrong_shard_ring().
  Bytes wrong_shard_ring_;
  /// Per-server circuit breaker state (DESIGN.md §13): consecutive overload
  /// refusals, and — once past the threshold — the demotion deadline. After
  /// `open_until` the server re-enters normal picks (the half-open probe);
  /// strikes stay at the threshold, so one more refusal re-opens it
  /// immediately while one useful reply resets it.
  struct Breaker {
    unsigned strikes = 0;
    SimTime open_until = 0;
  };
  std::unordered_map<std::uint32_t, Breaker> breakers_;
  /// Largest clamped retry-after hint since op start; cleared by
  /// begin_trace and take_overload_hint.
  SimDuration overload_hint_ = 0;
};

}  // namespace securestore::core
