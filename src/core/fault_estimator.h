// Dynamic fault estimation (§3's "another approach that attempts to reduce
// quorum size makes use of techniques to estimate the number of malicious
// servers [Alvisi-Malkhi-Pierce-Reiter-Wright, DSN 2000]. Thus, the quorum
// size is dynamically adjusted based on the number of servers that are
// believed to be faulty at a given time").
//
// The estimator accumulates *evidence* of misbehavior per server:
//  * hard evidence — a reply that is cryptographically impossible for a
//    correct server (failed signature on data it vouched for, malformed
//    response) — marks the server faulty outright;
//  * soft evidence — timeouts and stale replies — raises suspicion and
//    marks the server faulty after a threshold (a correct-but-slow server
//    can look like this, so several strikes are required).
//
// The client sizes its data sets as  f̂ + 1  where
//    f̂ = clamp(#servers currently believed faulty, b_min, b)
// b remains the safety bound from the deployment (evidence can only grow
// quorums back toward b+1, never shrink safety margins below b_min+1 that
// the application configured). With b_min = 0 and no observed faults, reads
// and writes touch a single server — the dynamic-quorum paper's fair-
// weather payoff — and degrade gracefully to b+1 as faults surface.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "util/ids.h"

namespace securestore::core {

class FaultEstimator {
 public:
  struct Config {
    std::uint32_t b_min = 0;          // optimistic floor for f̂
    std::uint32_t b_max = 1;          // the deployment's hard bound b
    std::uint32_t soft_strikes = 3;   // timeouts/stales before distrust
  };

  explicit FaultEstimator(Config config) : config_(config) {}

  /// Cryptographically conclusive misbehavior (bad signature, forged data).
  void report_hard_evidence(NodeId server);

  /// Suspicious but explainable behavior (timeout, stale reply).
  void report_soft_evidence(NodeId server);

  /// Positive interaction; decays soft suspicion (a recovered or merely
  /// slow server is rehabilitated, hard evidence never expires).
  void report_good_interaction(NodeId server);

  /// Currently believed-faulty servers.
  std::size_t believed_faulty() const;

  /// f̂: the estimate the client sizes its quorums with.
  std::uint32_t estimated_b() const;

  bool is_distrusted(NodeId server) const;

 private:
  Config config_;
  std::unordered_set<NodeId> hard_faulty_;
  std::unordered_map<NodeId, std::uint32_t> soft_strikes_;
};

}  // namespace securestore::core
