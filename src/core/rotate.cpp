#include "core/rotate.h"

namespace securestore::core {

VoidResult rotate_keys(SyncClient& store, std::span<const ItemId> items,
                       std::shared_ptr<ValueCodec> new_codec) {
  SecureStoreClient& client = store.client();
  std::shared_ptr<ValueCodec> old_codec = client.options().codec;

  for (const ItemId item : items) {
    // Read (and authenticate) under the old key.
    Result<Bytes> value = store.read_value(item);
    if (!value.ok()) {
      if (value.error() == Error::kNotFound) continue;  // nothing to rotate
      return VoidResult(value.error(), "rotate: read of item failed");
    }

    // Write back under the new key.
    client.set_codec(new_codec);
    const VoidResult written = store.write(item, *value);
    if (!written.ok()) {
      client.set_codec(std::move(old_codec));
      return VoidResult(written.error(), "rotate: write-back failed");
    }
    client.set_codec(old_codec);
  }

  client.set_codec(std::move(new_codec));
  return VoidResult{};
}

}  // namespace securestore::core
