#include "core/types.h"

namespace securestore::core {

const char* to_string(ConsistencyModel model) {
  switch (model) {
    case ConsistencyModel::kMRC: return "MRC";
    case ConsistencyModel::kCC: return "CC";
  }
  return "?";
}

const char* to_string(SharingMode mode) {
  switch (mode) {
    case SharingMode::kSingleWriter: return "single-writer";
    case SharingMode::kMultiWriter: return "multi-writer";
  }
  return "?";
}

const char* to_string(ClientTrust trust) {
  switch (trust) {
    case ClientTrust::kHonest: return "honest-clients";
    case ClientTrust::kByzantine: return "byzantine-clients";
  }
  return "?";
}

}  // namespace securestore::core
