// The auditing client (§3's Bayou-follow-up defense, operationalized).
//
// An auditor — any party with read access, e.g. an administrator cron job —
// periodically fetches every server's hash-chained audit log (kAuditRead)
// and checks (1) each chain verifies, i.e. no server rewrote its own
// history, and (2) no server is suppressing writes its peers recorded long
// enough ago for dissemination to have delivered. Findings identify the
// misbehaving server, turning silent denial-of-service into attributable
// evidence (exactly what the paper's passive-server design cannot do on the
// fast path).
#pragma once

#include <functional>

#include "core/config.h"
#include "net/quorum.h"
#include "net/rpc.h"
#include "storage/audit_log.h"
#include "util/result.h"

namespace securestore::core {

class Auditor {
 public:
  struct Options {
    SimDuration round_timeout = seconds(2);
    /// Newest entries per log to exempt from the suppression check
    /// (dissemination lag is not suppression).
    std::size_t tolerate_tail = 4;
  };

  Auditor(net::Transport& transport, NodeId network_id, StoreConfig config,
          Options options);

  struct Report {
    /// Servers that responded with a parseable log.
    std::size_t logs_collected = 0;
    std::vector<storage::AuditFinding> findings;
  };
  using ReportCb = std::function<void(Result<Report>)>;

  /// Fetches all logs and cross-audits them. Fails only if fewer than n-b
  /// servers produced a log at all.
  void run(ReportCb done);

 private:
  net::RpcNode node_;
  StoreConfig config_;
  Options options_;
};

}  // namespace securestore::core
