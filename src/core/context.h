// The client context (§4, §5.1).
//
// A context X_i = ((uid(x_1), ts_1), ..., (uid(x_m), ts_m)) captures a
// client's past interactions with a related group of data items. It is the
// consistency meta-data of the whole design: MRC advances the entry of the
// item being accessed; CC merges the writer's context into the reader's on
// every read, and the full context accompanies CC writes so servers and
// future readers can order them causally.
//
// Entries are kept in a sorted map so serialization — and therefore the
// signed digest — is canonical.
#pragma once

#include <map>
#include <string>

#include "core/timestamp.h"
#include "util/ids.h"
#include "util/serial.h"

namespace securestore::core {

class Context {
 public:
  Context() = default;
  explicit Context(GroupId group) : group_(group) {}

  GroupId group() const { return group_; }
  const std::map<ItemId, Timestamp>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// The timestamp recorded for `item` (zero timestamp if absent).
  Timestamp get(ItemId item) const;

  /// Sets `item`'s entry unconditionally.
  void set(ItemId item, Timestamp ts);

  /// Raises `item`'s entry to `ts` if `ts` is newer (no-op otherwise).
  void advance(ItemId item, const Timestamp& ts);

  /// Pointwise merge: every entry becomes the max of the two contexts —
  /// how a CC reader absorbs X_writer (Fig. 2 read protocol).
  void merge(const Context& other);

  /// True iff for every entry in `other`, this context has an entry at
  /// least as new. The "latest" context among quorum replies is one that
  /// dominates the others (§5.1).
  bool dominates(const Context& other) const;

  void encode(Writer& w) const;
  static Context decode(Reader& r);
  Bytes serialize() const;
  static Context deserialize(BytesView data);

  bool operator==(const Context& other) const {
    return group_ == other.group_ && entries_ == other.entries_;
  }

 private:
  GroupId group_{};
  std::map<ItemId, Timestamp> entries_;
};

std::string to_string(const Context& context);

}  // namespace securestore::core
