#include "core/context.h"

namespace securestore::core {

Timestamp Context::get(ItemId item) const {
  const auto it = entries_.find(item);
  return it != entries_.end() ? it->second : Timestamp{};
}

void Context::set(ItemId item, Timestamp ts) { entries_[item] = std::move(ts); }

void Context::advance(ItemId item, const Timestamp& ts) {
  auto [it, inserted] = entries_.try_emplace(item, ts);
  if (!inserted && it->second < ts) it->second = ts;
}

void Context::merge(const Context& other) {
  for (const auto& [item, ts] : other.entries_) advance(item, ts);
}

bool Context::dominates(const Context& other) const {
  for (const auto& [item, ts] : other.entries_) {
    if (ts.is_zero()) continue;
    const auto it = entries_.find(item);
    if (it == entries_.end() || it->second < ts) return false;
  }
  return true;
}

void Context::encode(Writer& w) const {
  w.u64(group_.value);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [item, ts] : entries_) {
    w.u64(item.value);
    ts.encode(w);
  }
}

Context Context::decode(Reader& r) {
  Context context(GroupId{r.u64()});
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const ItemId item{r.u64()};
    context.entries_[item] = Timestamp::decode(r);
  }
  return context;
}

Bytes Context::serialize() const {
  Writer w;
  encode(w);
  return w.take();
}

Context Context::deserialize(BytesView data) {
  Reader r(data);
  Context context = decode(r);
  r.expect_end();
  return context;
}

std::string to_string(const Context& context) {
  std::string out = to_string(context.group()) + "{";
  bool first = true;
  for (const auto& [item, ts] : context.entries()) {
    if (!first) out += ", ";
    first = false;
    out += to_string(item) + ":" + to_string(ts);
  }
  out += "}";
  return out;
}

}  // namespace securestore::core
