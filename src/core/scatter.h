// Fragmentation-scattering storage mode (§3's complementary technique:
// "Fray et al. propose a scheme that fragments the information in a data
// item and stores it at several servers. In this case, if fewer than a
// threshold number of servers are compromised, the data item's value cannot
// be reconstructed and hence cannot be disclosed"; Rabin's IDA [14] is the
// space-efficient dispersal).
//
// A scattered write of value v:
//  1. encrypts v under a fresh random data key (ChaCha20-Poly1305),
//  2. disperses the ciphertext with IDA(m = b+1, n) — each server stores
//     ~|v|/(b+1) bytes instead of |v|,
//  3. splits the data key with Shamir(k = b+1, n),
//  4. stores fragment_i || share_i as a signed, `kScattered`-flagged record
//     of the derived item fragment_item(x, i) at server S_i only.
//
// Guarantees (n >= 2b+2 required, satisfied by the usual n = 3b+1):
//  * confidentiality: b compromised servers hold b < k key shares — nothing
//    about the key, hence nothing about v (and only b IDA fragments of the
//    ciphertext anyway);
//  * availability: any b+1 live servers reconstruct; up to n-(b+1) may be
//    down;
//  * integrity: every fragment is writer-signed, so corrupt fragments are
//    dropped before reconstruction, and the AEAD tag over the reassembled
//    ciphertext catches any residual mismatch (e.g. mixed versions).
//
// The price relative to plain replication: scattered records are pinned to
// their server (no gossip repair), and an in-place overwrite is not atomic
// across fragments — reads pick the newest version with >= b+1 fragments.
#pragma once

#include <functional>

#include "core/config.h"
#include "crypto/keys.h"
#include "net/quorum.h"
#include "net/rpc.h"
#include "util/result.h"
#include "util/rng.h"

namespace securestore::core {

/// Derives the per-server fragment item uid. Item uids used with the
/// scattered store must fit in 56 bits.
ItemId fragment_item(ItemId item, std::uint8_t server_index);

class ScatteredStore {
 public:
  struct Options {
    GroupPolicy policy;  // must be single-writer (fragments are versioned)
    SimDuration round_timeout = seconds(2);
  };

  ScatteredStore(net::Transport& transport, NodeId network_id, ClientId client_id,
                 crypto::KeyPair keys, StoreConfig config, Options options, Rng rng);

  using VoidCb = std::function<void(VoidResult)>;
  using ReadCb = std::function<void(Result<Bytes>)>;

  /// Scatters `value` across all n servers; completes once n-b servers
  /// acknowledged their fragment (every live server must hold one — each
  /// fragment has exactly one home).
  void write(ItemId item, BytesView value, VoidCb done);

  /// Gathers fragments from all servers and reconstructs the newest version
  /// with at least b+1 fragments.
  void read(ItemId item, ReadCb done);

  std::uint32_t threshold() const { return config_.b + 1; }

 private:
  Bytes data_key_aad(ItemId item) const;

  net::RpcNode node_;
  ClientId client_id_;
  crypto::KeyPair keys_;
  StoreConfig config_;
  Options options_;
  Rng rng_;
  std::uint64_t version_ = 0;
};

}  // namespace securestore::core
