#include "core/auth.h"

#include "crypto/keys.h"

namespace securestore::core {

bool rights_cover(Rights granted, Rights needed) {
  return (static_cast<std::uint8_t>(granted) & static_cast<std::uint8_t>(needed)) ==
         static_cast<std::uint8_t>(needed);
}

Bytes AuthToken::signed_payload() const {
  Writer w;
  w.str("securestore.token.v1");
  w.u32(client.value);
  w.u64(group.value);
  w.u8(static_cast<std::uint8_t>(rights));
  w.u64(expiry);
  return w.take();
}

void AuthToken::encode(Writer& w) const {
  w.u32(client.value);
  w.u64(group.value);
  w.u8(static_cast<std::uint8_t>(rights));
  w.u64(expiry);
  w.bytes(signature);
}

AuthToken AuthToken::decode(Reader& r) {
  AuthToken token;
  token.client = ClientId{r.u32()};
  token.group = GroupId{r.u64()};
  token.rights = static_cast<Rights>(r.u8());
  token.expiry = r.u64();
  token.signature = r.bytes();
  return token;
}

AuthToken Authorizer::issue(ClientId client, GroupId group, Rights rights,
                            SimTime expiry) const {
  AuthToken token;
  token.client = client;
  token.group = group;
  token.rights = rights;
  token.expiry = expiry;
  token.signature = crypto::meter_sign(seed_, token.signed_payload());
  return token;
}

bool TokenVerifier::check(const std::optional<AuthToken>& token, ClientId client,
                          GroupId group, Rights needed, SimTime now) const {
  if (!token.has_value()) return false;
  if (token->client != client || token->group != group) return false;
  if (!rights_cover(token->rights, needed)) return false;
  if (token->expiry != 0 && now >= token->expiry) return false;
  return crypto::meter_verify(key_, token->signed_payload(), token->signature);
}

}  // namespace securestore::core
