#include "core/messages.h"

namespace securestore::core {

namespace detail {

void encode_optional_token(Writer& w, const std::optional<AuthToken>& token) {
  w.u8(token.has_value() ? 1 : 0);
  if (token.has_value()) token->encode(w);
}

std::optional<AuthToken> decode_optional_token(Reader& r) {
  if (r.u8() == 0) return std::nullopt;
  return AuthToken::decode(r);
}

}  // namespace detail

namespace {

void encode_optional_record(Writer& w, const std::optional<WriteRecord>& record) {
  w.u8(record.has_value() ? 1 : 0);
  if (record.has_value()) record->encode(w);
}

std::optional<WriteRecord> decode_optional_record(Reader& r) {
  if (r.u8() == 0) return std::nullopt;
  return WriteRecord::decode(r);
}

void encode_records(Writer& w, const std::vector<WriteRecord>& records) {
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const WriteRecord& record : records) record.encode(w);
}

std::vector<WriteRecord> decode_records(Reader& r) {
  const std::uint32_t count = r.u32();
  std::vector<WriteRecord> records;
  // Do NOT reserve(count): the count is attacker-controlled and checked
  // only implicitly, by decode throwing once the input runs out.
  for (std::uint32_t i = 0; i < count; ++i) records.push_back(WriteRecord::decode(r));
  return records;
}

}  // namespace

Bytes ContextReadReq::serialize() const {
  Writer w;
  w.u32(owner.value);
  w.u64(group.value);
  return w.take();
}

ContextReadReq ContextReadReq::deserialize(BytesView data) {
  Reader r(data);
  ContextReadReq req;
  req.owner = ClientId{r.u32()};
  req.group = GroupId{r.u64()};
  r.expect_end();
  return req;
}

Bytes ContextReadResp::serialize() const {
  Writer w;
  w.u8(stored.has_value() ? 1 : 0);
  if (stored.has_value()) stored->encode(w);
  return w.take();
}

ContextReadResp ContextReadResp::deserialize(BytesView data) {
  Reader r(data);
  ContextReadResp resp;
  if (r.u8() != 0) resp.stored = StoredContext::decode(r);
  r.expect_end();
  return resp;
}

Bytes ContextWriteReq::serialize() const {
  Writer w;
  stored.encode(w);
  return w.take();
}

ContextWriteReq ContextWriteReq::deserialize(BytesView data) {
  Reader r(data);
  ContextWriteReq req;
  req.stored = StoredContext::decode(r);
  r.expect_end();
  return req;
}

Bytes AckResp::serialize() const {
  Writer w;
  w.u8(ok ? 1 : 0);
  return w.take();
}

AckResp AckResp::deserialize(BytesView data) {
  Reader r(data);
  AckResp resp;
  resp.ok = r.u8() != 0;
  r.expect_end();
  return resp;
}

Bytes MetaReq::serialize() const {
  Writer w;
  w.u64(item.value);
  w.u64(group.value);
  w.u32(requester.value);
  w.u8(include_value ? 1 : 0);
  detail::encode_optional_token(w, token);
  return w.take();
}

MetaReq MetaReq::deserialize(BytesView data) {
  Reader r(data);
  MetaReq req;
  req.item = ItemId{r.u64()};
  req.group = GroupId{r.u64()};
  req.requester = ClientId{r.u32()};
  req.include_value = r.u8() != 0;
  req.token = detail::decode_optional_token(r);
  r.expect_end();
  return req;
}

Bytes MetaResp::serialize() const {
  Writer w;
  w.u8(faulty_writer ? 1 : 0);
  w.u8(value_included ? 1 : 0);
  encode_optional_record(w, meta);
  return w.take();
}

MetaResp MetaResp::deserialize(BytesView data) {
  Reader r(data);
  MetaResp resp;
  resp.faulty_writer = r.u8() != 0;
  resp.value_included = r.u8() != 0;
  resp.meta = decode_optional_record(r);
  r.expect_end();
  return resp;
}

Bytes ReadReq::serialize() const {
  Writer w;
  w.u64(item.value);
  w.u64(group.value);
  ts.encode(w);
  w.u32(requester.value);
  detail::encode_optional_token(w, token);
  return w.take();
}

ReadReq ReadReq::deserialize(BytesView data) {
  Reader r(data);
  ReadReq req;
  req.item = ItemId{r.u64()};
  req.group = GroupId{r.u64()};
  req.ts = Timestamp::decode(r);
  req.requester = ClientId{r.u32()};
  req.token = detail::decode_optional_token(r);
  r.expect_end();
  return req;
}

Bytes ReadResp::serialize() const {
  Writer w;
  w.u8(faulty_writer ? 1 : 0);
  encode_optional_record(w, record);
  return w.take();
}

ReadResp ReadResp::deserialize(BytesView data) {
  Reader r(data);
  ReadResp resp;
  resp.faulty_writer = r.u8() != 0;
  resp.record = decode_optional_record(r);
  r.expect_end();
  return resp;
}

Bytes WriteReq::serialize() const {
  Writer w;
  record.encode(w);
  detail::encode_optional_token(w, token);
  return w.take();
}

WriteReq WriteReq::deserialize(BytesView data) {
  Reader r(data);
  WriteReq req;
  req.record = WriteRecord::decode(r);
  req.token = detail::decode_optional_token(r);
  r.expect_end();
  return req;
}

Bytes WriteResp::serialize() const {
  Writer w;
  w.u8(ok ? 1 : 0);
  w.bytes(stability_share);
  return w.take();
}

WriteResp WriteResp::deserialize(BytesView data) {
  Reader r(data);
  WriteResp resp;
  resp.ok = r.u8() != 0;
  resp.stability_share = r.bytes();
  r.expect_end();
  return resp;
}

Bytes LogReadReq::serialize() const {
  Writer w;
  w.u64(item.value);
  w.u64(group.value);
  w.u32(requester.value);
  detail::encode_optional_token(w, token);
  return w.take();
}

LogReadReq LogReadReq::deserialize(BytesView data) {
  Reader r(data);
  LogReadReq req;
  req.item = ItemId{r.u64()};
  req.group = GroupId{r.u64()};
  req.requester = ClientId{r.u32()};
  req.token = detail::decode_optional_token(r);
  r.expect_end();
  return req;
}

Bytes LogReadResp::serialize() const {
  Writer w;
  w.u8(faulty_writer ? 1 : 0);
  encode_records(w, records);
  return w.take();
}

LogReadResp LogReadResp::deserialize(BytesView data) {
  Reader r(data);
  LogReadResp resp;
  resp.faulty_writer = r.u8() != 0;
  resp.records = decode_records(r);
  r.expect_end();
  return resp;
}

Bytes ReconstructReq::serialize() const {
  Writer w;
  w.u64(group.value);
  return w.take();
}

ReconstructReq ReconstructReq::deserialize(BytesView data) {
  Reader r(data);
  ReconstructReq req;
  req.group = GroupId{r.u64()};
  r.expect_end();
  return req;
}

Bytes ReconstructResp::serialize() const {
  Writer w;
  encode_records(w, metas);
  return w.take();
}

ReconstructResp ReconstructResp::deserialize(BytesView data) {
  Reader r(data);
  ReconstructResp resp;
  resp.metas = decode_records(r);
  r.expect_end();
  return resp;
}

Bytes StabilityMsg::serialize() const {
  Writer w;
  w.u64(item.value);
  ts.encode(w);
  w.bytes(certificate.serialize());
  return w.take();
}

StabilityMsg StabilityMsg::deserialize(BytesView data) {
  Reader r(data);
  StabilityMsg msg;
  msg.item = ItemId{r.u64()};
  msg.ts = Timestamp::decode(r);
  msg.certificate = crypto::MultisigCertificate::deserialize(r.bytes());
  r.expect_end();
  return msg;
}

Bytes OverloadedResp::serialize() const {
  Writer w;
  w.u32(retry_after_us);
  w.bytes(signature);
  return w.take();
}

OverloadedResp OverloadedResp::deserialize(BytesView data) {
  Reader r(data);
  OverloadedResp resp;
  resp.retry_after_us = r.u32();
  resp.signature = r.bytes();
  // No expect_end(): trailing bytes are a future protocol version's
  // extension suffix, ignored by v1 receivers (PROTOCOL.md §12).
  return resp;
}

Bytes overload_statement(std::uint32_t retry_after_us) {
  Writer w;
  w.str("securestore.overloaded.v1");
  w.u32(retry_after_us);
  return w.take();
}

Bytes stability_statement(ItemId item, const Timestamp& ts) {
  Writer w;
  w.str("securestore.stable.v1");
  w.u64(item.value);
  ts.encode(w);
  return w.take();
}

}  // namespace securestore::core
