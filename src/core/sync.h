// Blocking facade over the asynchronous client.
//
// Drives the discrete-event scheduler until the operation's callback fires,
// so tests, examples and benches read like straight-line code while the
// full event-driven protocol stack (messages, latencies, timeouts, gossip)
// runs underneath. Deterministic: same seed, same interleaving.
#pragma once

#include <optional>

#include "core/client.h"
#include "sim/scheduler.h"

namespace securestore::core {

class SyncClient {
 public:
  SyncClient(SecureStoreClient& client, sim::Scheduler& scheduler)
      : client_(client), scheduler_(scheduler) {}

  VoidResult connect(GroupId group);
  VoidResult disconnect();
  VoidResult reconstruct_context(GroupId group);
  VoidResult write(ItemId item, BytesView value);
  Result<ReadOutput> read(ItemId item);
  /// Convenience: the value only (errors pass through).
  Result<Bytes> read_value(ItemId item);
  Result<std::vector<GroupEntry>> list_group(GroupId group);

  SecureStoreClient& client() { return client_; }

 private:
  template <typename R>
  R wait(std::optional<R>& slot) {
    while (!slot.has_value() && scheduler_.step()) {
    }
    if (slot.has_value()) return std::move(*slot);
    // The event queue drained without the callback firing — only possible
    // if the protocol lost its timeout event, which would be a bug.
    return R(Error::kTimeout, "event queue drained before completion");
  }

  SecureStoreClient& client_;
  sim::Scheduler& scheduler_;
};

}  // namespace securestore::core
