#include "core/server.h"

#include "storage/snapshot.h"

namespace securestore::core {

SecureStoreServer::SecureStoreServer(net::Transport& transport, NodeId id, StoreConfig config,
                                     crypto::KeyPair keys, Options options, Rng rng)
    : node_(transport, id),
      config_(std::move(config)),
      keys_(std::move(keys)),
      options_(std::move(options)),
      items_(config_.max_log_entries) {
  config_.validate();
  if (options_.authority_key.has_value()) {
    token_verifier_.emplace(*options_.authority_key);
  }

  gossip_ = std::make_unique<gossip::GossipEngine>(
      node_, items_, config_.servers, options_.gossip, std::move(rng),
      [this](const WriteRecord& record, NodeId /*from*/) {
        // Scattered fragments never travel by gossip (honest peers do not
        // send them; see RecordFlags::kScattered).
        if (record.flags & kScattered) return false;
        if (!validate_record(record)) return false;
        apply_with_holds(record);
        return true;
      });

  node_.set_request_handler([this](NodeId from, net::MsgType type, BytesView body) {
    return handle_request(from, type, body);
  });
  node_.set_oneway_handler([this](NodeId from, net::MsgType type, BytesView body) {
    handle_oneway(from, type, body);
  });

  if (options_.start_gossip) gossip_->start();

  if (options_.snapshot_path.has_value()) {
    // Boot from the last snapshot if one exists.
    try {
      restore(storage::load_snapshot_file(*options_.snapshot_path));
    } catch (const std::runtime_error&) {
      // No snapshot yet: fresh server.
    }
    // Periodic persistence.
    const auto schedule_save = [this](auto&& self) -> void {
      node_.transport().schedule(
          options_.snapshot_period, [this, alive = alive_, self]() {
            if (!*alive) return;
            save_snapshot_now();
            self(self);
          });
    };
    schedule_save(schedule_save);
  }
}

SecureStoreServer::~SecureStoreServer() { *alive_ = false; }

Bytes SecureStoreServer::snapshot() const {
  // Stores plus the audit chain: a reboot must not let a server shed its
  // own history (the chain is the tamper evidence auditors rely on).
  Writer w;
  w.bytes(storage::make_snapshot(items_, contexts_));
  w.bytes(audit_.serialize());
  return w.take();
}

void SecureStoreServer::restore(BytesView snapshot_blob) {
  Reader r(snapshot_blob);
  const Bytes stores = r.bytes();
  const Bytes audit = r.bytes();
  r.expect_end();
  storage::restore_snapshot(stores, items_, contexts_);
  storage::AuditLog restored = storage::AuditLog::deserialize(audit);
  if (!restored.verify()) throw DecodeError("server snapshot: audit chain broken");
  audit_ = std::move(restored);
}

void SecureStoreServer::save_snapshot_now() const {
  if (!options_.snapshot_path.has_value()) return;
  storage::save_snapshot_file(*options_.snapshot_path, snapshot());
}

void SecureStoreServer::set_group_policy(const GroupPolicy& policy) {
  policies_[policy.group] = policy;
}

const GroupPolicy& SecureStoreServer::group_policy(GroupId group) const {
  const auto it = policies_.find(group);
  return it != policies_.end() ? it->second : default_policy_;
}

bool SecureStoreServer::accept_request(NodeId /*from*/, net::MsgType /*type*/) { return true; }

std::optional<std::optional<std::pair<net::MsgType, Bytes>>> SecureStoreServer::preempt_request(
    NodeId /*from*/, net::MsgType /*type*/, BytesView /*body*/) {
  return std::nullopt;
}

std::optional<std::pair<net::MsgType, Bytes>> SecureStoreServer::filter_response(
    NodeId /*from*/, net::MsgType /*request_type*/, BytesView /*request_body*/,
    std::optional<std::pair<net::MsgType, Bytes>> honest) {
  return honest;
}

const Bytes* SecureStoreServer::client_key(ClientId client) const {
  const auto it = config_.client_keys.find(client.value);
  return it != config_.client_keys.end() ? &it->second : nullptr;
}

bool SecureStoreServer::authorized(const std::optional<AuthToken>& token, ClientId client,
                                   GroupId group, Rights needed) const {
  if (!token_verifier_.has_value()) return true;  // authorization disabled
  return token_verifier_->check(token, client, group, needed, node_.transport().now());
}

std::optional<std::pair<net::MsgType, Bytes>> SecureStoreServer::handle_request(
    NodeId from, net::MsgType type, BytesView body) {
  if (!accept_request(from, type)) return std::nullopt;
  if (auto preempted = preempt_request(from, type, body); preempted.has_value()) {
    return std::move(*preempted);
  }

  std::optional<std::pair<net::MsgType, Bytes>> honest;
  try {
    switch (type) {
      case net::MsgType::kContextRead:
        honest = {net::MsgType::kContextRead,
                  handle_context_read(ContextReadReq::deserialize(body))};
        break;
      case net::MsgType::kContextWrite:
        honest = {net::MsgType::kAck, handle_context_write(ContextWriteReq::deserialize(body))};
        break;
      case net::MsgType::kMetaRequest:
        honest = {net::MsgType::kMetaRequest, handle_meta(MetaReq::deserialize(body))};
        break;
      case net::MsgType::kRead:
        honest = {net::MsgType::kRead, handle_read(ReadReq::deserialize(body))};
        break;
      case net::MsgType::kWrite:
        honest = {net::MsgType::kWrite, handle_write(WriteReq::deserialize(body))};
        break;
      case net::MsgType::kLogRead:
        honest = {net::MsgType::kLogRead, handle_log_read(LogReadReq::deserialize(body))};
        break;
      case net::MsgType::kReconstruct:
        honest = {net::MsgType::kReconstruct,
                  handle_reconstruct(ReconstructReq::deserialize(body))};
        break;
      case net::MsgType::kAuditRead:
        honest = {net::MsgType::kAuditRead, audit_.serialize()};
        break;
      default:
        return std::nullopt;  // unknown request: ignore
    }
  } catch (const DecodeError&) {
    return std::nullopt;  // malformed request: ignore
  }

  return filter_response(from, type, body, std::move(honest));
}

void SecureStoreServer::handle_oneway(NodeId from, net::MsgType type, BytesView body) {
  if (!accept_request(from, type)) return;  // fault hook covers oneways too
  switch (type) {
    case net::MsgType::kGossipDigest:
    case net::MsgType::kGossipUpdates:
    case net::MsgType::kGossipRequest:
      gossip_->handle(from, type, body);
      return;
    case net::MsgType::kStability:
      try {
        handle_stability(StabilityMsg::deserialize(body));
      } catch (const DecodeError&) {
      }
      return;
    default:
      return;
  }
}

Bytes SecureStoreServer::handle_context_read(const ContextReadReq& req) {
  ContextReadResp resp;
  const StoredContext* stored = contexts_.get(req.owner, req.group);
  if (stored != nullptr) resp.stored = *stored;
  return resp.serialize();
}

Bytes SecureStoreServer::handle_context_write(const ContextWriteReq& req) {
  AckResp resp;
  const Bytes* key = client_key(req.stored.owner);
  // "Non-faulty servers need to verify the signature to ensure that they do
  // not overwrite their context data with spurious information" (§6).
  if (key != nullptr && req.stored.verify(*key)) {
    contexts_.apply(req.stored);
    resp.ok = true;
  }
  return resp.serialize();
}

Bytes SecureStoreServer::handle_meta(const MetaReq& req) {
  MetaResp resp;
  const WriteRecord* current = items_.current(req.item);
  if (current != nullptr &&
      authorized(req.token, req.requester, current->group, Rights::kRead)) {
    resp.meta = req.include_value ? *current : current->meta_only();
    resp.value_included = req.include_value;
    resp.faulty_writer = items_.flagged_faulty(req.item);
  }
  return resp.serialize();
}

Bytes SecureStoreServer::handle_read(const ReadReq& req) {
  ReadResp resp;
  const WriteRecord* current = items_.current(req.item);
  if (current != nullptr &&
      authorized(req.token, req.requester, current->group, Rights::kRead)) {
    // Return the newest we have; the client accepts it iff it satisfies the
    // timestamp it selected in the meta phase.
    resp.record = *current;
    resp.faulty_writer = items_.flagged_faulty(req.item);
  }
  return resp.serialize();
}

Bytes SecureStoreServer::handle_write(const WriteReq& req) {
  WriteResp resp;
  const WriteRecord& record = req.record;
  if (!authorized(req.token, record.writer, record.group, Rights::kWrite)) {
    return resp.serialize();
  }
  if (!validate_record(record)) return resp.serialize();

  const bool visible = apply_with_holds(record);
  resp.ok = true;

  // Rumor mongering: spread a fresh client write immediately instead of
  // waiting for the next anti-entropy tick (§5.2: "new data values could be
  // sent to one or more servers at a frequency that can be tuned").
  if (visible && gossip_->config().push_on_write) gossip_->push_record(record);

  // Multi-writer deployments with Byzantine clients get a stability share
  // in the ack; the writer aggregates 2b+1 of these into the certificate
  // that lets servers garbage collect their logs (§5.3).
  const GroupPolicy& policy = group_policy(record.group);
  if (visible && policy.sharing == SharingMode::kMultiWriter &&
      policy.trust == ClientTrust::kByzantine) {
    resp.stability_share =
        crypto::meter_sign(keys_.seed, stability_statement(record.item, record.ts));
  }
  return resp.serialize();
}

Bytes SecureStoreServer::handle_log_read(const LogReadReq& req) {
  LogReadResp resp;
  std::vector<WriteRecord> log = items_.log(req.item);
  if (!log.empty() && !authorized(req.token, req.requester, log.front().group, Rights::kRead)) {
    return LogReadResp{}.serialize();
  }
  resp.records = std::move(log);
  resp.faulty_writer = items_.flagged_faulty(req.item);
  return resp.serialize();
}

Bytes SecureStoreServer::handle_reconstruct(const ReconstructReq& req) {
  ReconstructResp resp;
  resp.metas = items_.group_meta(req.group);
  return resp.serialize();
}

void SecureStoreServer::handle_stability(const StabilityMsg& msg) {
  // Trust the certificate only if 2b+1 distinct servers signed the exact
  // statement: then at least b+1 correct servers store the new value and
  // superseded log entries are safe to drop (§5.3).
  if (msg.certificate.statement() != stability_statement(msg.item, msg.ts)) return;
  if (!msg.certificate.satisfies(config_.stability_threshold(), config_.server_keys)) return;
  items_.prune_log(msg.item, msg.ts);
}

bool SecureStoreServer::validate_record(const WriteRecord& record) const {
  const Bytes* key = client_key(record.writer);
  if (key == nullptr) return false;

  const GroupPolicy& policy = group_policy(record.group);
  if (record.model != policy.model) return false;

  if (policy.sharing == SharingMode::kMultiWriter) {
    // Multi-writer timestamps must be the §5.3 3-tuple, bound to this writer
    // and this value.
    if (record.ts.writer != record.writer) return false;
    if (record.ts.digest.empty() || record.ts.digest != record.value_digest) return false;
  } else {
    // Single-writer: version-only timestamps.
    if (record.ts.writer != ClientId{} || !record.ts.digest.empty()) return false;
  }

  return record.verify(*key);
}

bool SecureStoreServer::apply_with_holds(const WriteRecord& record) {
  const GroupPolicy& policy = group_policy(record.group);
  const bool needs_hold = policy.sharing == SharingMode::kMultiWriter &&
                          policy.trust == ClientTrust::kByzantine &&
                          record.model == ConsistencyModel::kCC;

  const auto have = [this](ItemId item, const Timestamp& ts) {
    const WriteRecord* current = items_.current(item);
    return current != nullptr && !(current->ts < ts);
  };

  if (needs_hold && !storage::HoldQueue::dependencies_met(record, have)) {
    holds_.hold(record);
    return false;
  }

  if (items_.apply(record) != storage::ApplyResult::kDuplicate) {
    audit_.append(record, node_.transport().now());
  }

  // A new arrival can transitively unblock held writes.
  while (true) {
    std::vector<WriteRecord> released = holds_.release(have);
    if (released.empty()) break;
    for (const WriteRecord& unblocked : released) {
      if (items_.apply(unblocked) != storage::ApplyResult::kDuplicate) {
        audit_.append(unblocked, node_.transport().now());
      }
    }
  }
  return true;
}

}  // namespace securestore::core
