#include "core/server.h"

#include <cstdio>
#include <filesystem>

#include <algorithm>
#include <limits>

#include "crypto/ed25519_batch.h"
#include "net/introspect.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "storage/item_store.h"
#include "storage/lsm/lsm_store.h"
#include "storage/snapshot.h"

namespace securestore::core {

SecureStoreServer::SecureStoreServer(net::Transport& transport, NodeId id, StoreConfig config,
                                     crypto::KeyPair keys, Options options, Rng rng)
    : node_(transport, id),
      config_(std::move(config)),
      keys_(std::move(keys)),
      options_(std::move(options)),
      events_(transport.events()),
      items_(make_engine()),
      admission_(options_.admission),
      req_other_(transport.registry().counter("server.req.other" + options_.metric_suffix)),
      equivocations_(
          transport.registry().counter("server.equivocations" + options_.metric_suffix)),
      hold_depth_(transport.registry().gauge("server." + std::to_string(id.value) +
                                             ".hold_queue.depth" + options_.metric_suffix)),
      apply_us_(transport.registry().histogram("server.apply_us" + options_.metric_suffix)),
      wal_append_us_(
          transport.registry().histogram("server.wal.append_us" + options_.metric_suffix)),
      wal_sync_us_(
          transport.registry().histogram("server.wal.sync_us" + options_.metric_suffix)),
      batch_size_(transport.registry().histogram("server.batch_size" + options_.metric_suffix,
                                                 {1, 2, 4, 8, 16, 32, 64})),
      shed_(transport.registry().counter("server.shed" + options_.metric_suffix)),
      introspect_limited_(transport.registry().counter("server.introspect_limited" +
                                                       options_.metric_suffix)),
      wrong_shard_(transport.registry().counter("shard.wrong_shard" + options_.metric_suffix)),
      ring_installed_(
          transport.registry().counter("shard.ring_installed" + options_.metric_suffix)),
      ring_rejected_(
          transport.registry().counter("shard.ring_rejected" + options_.metric_suffix)) {
  config_.validate();
  boot_at_ = transport.now();
  introspect_tokens_ = options_.introspect.burst;
  introspect_refill_at_ = boot_at_;
  // Request-mix counters: one per request type this server answers, plus
  // the gossip/stability oneways.
  obs::Registry& registry = transport.registry();
  const std::pair<net::MsgType, const char*> kReqNames[] = {
      {net::MsgType::kContextRead, "context_read"},
      {net::MsgType::kContextWrite, "context_write"},
      {net::MsgType::kMetaRequest, "meta"},
      {net::MsgType::kRead, "read"},
      {net::MsgType::kWrite, "write"},
      {net::MsgType::kLogRead, "log_read"},
      {net::MsgType::kReconstruct, "reconstruct"},
      {net::MsgType::kAuditRead, "audit_read"},
      {net::MsgType::kGossipDigest, "gossip_digest"},
      {net::MsgType::kGossipUpdates, "gossip_updates"},
      {net::MsgType::kGossipRequest, "gossip_request"},
      {net::MsgType::kGossipRing, "gossip_ring"},
      {net::MsgType::kStability, "stability"},
      {net::MsgType::kIntrospect, "introspect"},
  };
  for (const auto& [type, name] : kReqNames) {
    req_counters_[static_cast<std::uint16_t>(type)] =
        &registry.counter(std::string("server.req.") + name + options_.metric_suffix);
  }
  if (options_.authority_key.has_value()) {
    token_verifier_.emplace(*options_.authority_key);
  }
  // Before any recovery: replayed records must see the same policies (hold
  // rules, models) they were accepted under.
  for (const GroupPolicy& policy : options_.group_policies) set_group_policy(policy);

  // The boot ring is operator-provided but held to the same bar as gossiped
  // ones: a misconfigured shard must fail loudly, not silently serve
  // everything.
  if (options_.ring.has_value() && !install_ring(*options_.ring)) {
    throw std::invalid_argument("server: boot ring rejected (signature or shape)");
  }

  gossip_ = std::make_unique<gossip::GossipEngine>(
      node_, *items_, config_.servers, options_.gossip, std::move(rng),
      [this](const WriteRecord& record, NodeId /*from*/) {
        // Scattered fragments never travel by gossip (honest peers do not
        // send them; see RecordFlags::kScattered).
        if (record.flags & kScattered) return false;
        // Sharded: records for groups another shard owns never enter this
        // store, whoever gossips them (rebalance uses import_record).
        if (!owns_group(record.group)) return false;
        if (!validate_record(record)) return false;
        apply_with_holds(record);
        return true;
      });

  // Multi-record gossip messages settle every writer signature in one
  // Ed25519 batch instead of record-by-record.
  gossip_->set_apply_batch(
      [this](const std::vector<std::pair<WriteRecord, obs::TraceContext>>& records,
             NodeId from) { return apply_gossip_batch(records, from); });

  // Ring dissemination rides gossip: offer our installed ring each tick and
  // consider any ring a peer offers (install_ring enforces signature +
  // version, so a Byzantine peer can neither forge nor roll back).
  gossip_->set_ring_hooks([this] { return ring_bytes_; },
                          [this](NodeId from, BytesView body) { install_ring_bytes(from, body); });

  node_.set_request_handler([this](NodeId from, net::MsgType type, BytesView body) {
    return handle_request(from, type, body, node_.incoming_trace());
  });
  // The batched hot path: on transports with native delivery batching, every
  // request pending at one dispatch wakeup arrives here in a single call.
  node_.set_batch_request_handler([this](std::vector<net::IncomingRequest>& batch) {
    return handle_request_batch(batch);
  });
  node_.set_oneway_handler([this](NodeId from, net::MsgType type, BytesView body) {
    handle_oneway(from, type, body);
  });

  if (options_.start_gossip) gossip_->start();

  boot_from_disk();

  if (options_.snapshot_path.has_value()) {
    // Periodic persistence.
    const auto schedule_save = [this](auto&& self) -> void {
      node_.transport().schedule(
          options_.snapshot_period, [this, alive = alive_, self]() {
            if (!*alive) return;
            save_snapshot_now();
            self(self);
          });
    };
    schedule_save(schedule_save);
  }
  if (wal_ != nullptr && options_.durability->fsync == storage::FsyncPolicy::kInterval) {
    // Group commit: one fsync per tick covers every append since the last.
    const auto schedule_flush = [this](auto&& self) -> void {
      node_.transport().schedule(
          options_.durability->flush_interval, [this, alive = alive_, self]() {
            if (!*alive) return;
            const std::uint64_t start = obs::wall_now_us();
            wal_->sync();
            wal_sync_us_.observe(static_cast<double>(obs::wall_now_us() - start));
            self(self);
          });
    };
    schedule_flush(schedule_flush);
  }
}

std::unique_ptr<storage::StorageEngine> SecureStoreServer::make_engine() {
  if (config_.engine.kind == StorageEngineKind::kMemory) {
    return std::make_unique<storage::ItemStore>(config_.max_log_entries);
  }
  // kLsm: records live on disk, so the engine is only meaningful with a
  // durability directory to live in.
  if (!options_.durability.has_value()) {
    throw std::invalid_argument(
        "server: the LSM storage engine requires DurabilityOptions (WAL + data dir)");
  }
  storage::lsm::LsmStore::Options lsm;
  lsm.dir = options_.durability->data_dir.empty() ? options_.durability->wal_dir + ".lsm"
                                                  : options_.durability->data_dir;
  lsm.max_log_entries = config_.max_log_entries;
  lsm.memtable_budget_bytes = config_.engine.memtable_budget_bytes;
  lsm.l0_compact_threshold = config_.engine.l0_compact_threshold;
  lsm.sst_target_bytes = config_.engine.sst_target_bytes;
  lsm.registry = &node_.transport().registry();
  lsm.metric_prefix = "server." + std::to_string(node_.id().value) + ".";
  lsm.metric_suffix = options_.metric_suffix;
  return std::make_unique<storage::lsm::LsmStore>(std::move(lsm));
}

void SecureStoreServer::boot_from_disk() {
  if (options_.snapshot_path.has_value() &&
      std::filesystem::exists(*options_.snapshot_path)) {
    try {
      restore(storage::load_snapshot_file(*options_.snapshot_path));
    } catch (const std::exception& error) {
      // A corrupt/truncated snapshot must not kill the server (it may be
      // the only replica holding a quorum's worth of data in its WAL).
      // Quarantine the file for forensics, reset any partially restored
      // state, and start from scratch + WAL replay.
      const std::string& path = *options_.snapshot_path;
      const std::string quarantine = path + ".corrupt";
      std::remove(quarantine.c_str());
      std::rename(path.c_str(), quarantine.c_str());
      std::fprintf(stderr,
                   "securestore: server %u: quarantined corrupt snapshot %s (%s); "
                   "starting fresh\n",
                   node_.id().value, path.c_str(), error.what());
      // A persistent engine's records never lived in the blob — keep them;
      // only the blob-carried state resets.
      if (!items_->persistent()) items_ = make_engine();
      contexts_ = storage::ContextStore();
      audit_ = storage::AuditLog();
      wal_covered_lsn_ = 0;
    }
  }
  if (options_.durability.has_value()) {
    storage::WalOptions wal_options;
    wal_options.dir = options_.durability->wal_dir;
    wal_options.fsync = options_.durability->fsync;
    wal_options.segment_bytes = options_.durability->wal_segment_bytes;
    wal_ = std::make_unique<storage::WriteAheadLog>(std::move(wal_options));
    // A fresh/behind WAL must never reuse LSNs the snapshot already covers.
    wal_->reserve_through(std::max(wal_covered_lsn_, items_->durable_lsn()));
    // A persistent engine may be behind OR ahead of the blob (e.g. a
    // quarantined SST reports durable_lsn 0; a budget-triggered flush runs
    // between snapshots). Replay from the older coverage — re-applied
    // entries land as kDuplicate.
    std::uint64_t replay_from = wal_covered_lsn_;
    if (items_->persistent()) replay_from = std::min(replay_from, items_->durable_lsn());
    wal_replaying_ = true;
    wal_->replay(replay_from,
                 [this](std::uint64_t lsn, storage::WalEntryType type, BytesView payload) {
                   replay_lsn_ = lsn;
                   replay_wal_entry(type, payload);
                 });
    wal_replaying_ = false;
    // Everything replayed is applied: let the engine's next flush cover it.
    note_engine_watermark(wal_->last_lsn());
  }
}

void SecureStoreServer::replay_wal_entry(storage::WalEntryType type, BytesView payload) {
  try {
    Reader r(payload);
    switch (type) {
      case storage::WalEntryType::kWrite: {
        const WriteRecord record = WriteRecord::decode(r);
        r.expect_end();
        // Through the full apply path: ordering, equivocation flags, log
        // bounds and causal holds are re-established, not trusted from
        // disk. Holds release exactly as they did live because entries
        // replay in arrival order.
        apply_with_holds(record);
        break;
      }
      case storage::WalEntryType::kRelease: {
        const WriteRecord record = WriteRecord::decode(r);
        r.expect_end();
        // Usually a duplicate of an already-replayed kWrite whose release
        // re-derived; applying is idempotent either way.
        if (items_->apply(record) != storage::ApplyResult::kDuplicate) {
          audit_.append(record, node_.transport().now());
        }
        break;
      }
      case storage::WalEntryType::kContext: {
        const StoredContext stored = StoredContext::decode(r);
        r.expect_end();
        contexts_.apply(stored);
        break;
      }
      default:
        break;  // unknown entry type: forward compatibility, skip
    }
  } catch (const DecodeError&) {
    // CRC-valid but undecodable: skip this entry, keep replaying.
  }
}

std::uint64_t SecureStoreServer::wal_append(storage::WalEntryType type, BytesView payload) {
  if (wal_ == nullptr || wal_replaying_) return 0;
  // WAL latency is always wall time: disk I/O is real even when the rest of
  // the deployment runs on the simulator's virtual clock.
  const std::uint64_t start = obs::wall_now_us();
  const std::uint64_t lsn = wal_->append(type, payload);
  const std::uint64_t elapsed = obs::wall_now_us() - start;
  wal_append_us_.observe(static_cast<double>(elapsed));
  local_wal_append_us_.observe(static_cast<double>(elapsed));
  admission_.note_wal_append(static_cast<double>(elapsed));
  if (events_.want(active_trace_)) {
    events_.span(node_.id().value, active_trace_, "server.wal.append", "server",
                 static_cast<std::uint64_t>(node_.transport().now()), elapsed);
  }
  note_engine_watermark(lsn);
  return lsn;
}

void SecureStoreServer::note_engine_watermark(std::uint64_t lsn) {
  if (hold_lsn_floor_.has_value()) lsn = std::min(lsn, *hold_lsn_floor_);
  items_->note_wal_lsn(lsn);
}

std::uint64_t SecureStoreServer::covered_lsn_target() const {
  std::uint64_t covered = wal_ != nullptr ? wal_->last_lsn() : wal_covered_lsn_;
  if (hold_lsn_floor_.has_value()) covered = std::min(covered, *hold_lsn_floor_);
  return covered;
}

std::uint64_t SecureStoreServer::wal_append_record(storage::WalEntryType type,
                                                   const WriteRecord& record) {
  if (wal_ == nullptr || wal_replaying_) return 0;
  Writer w;
  record.encode(w);
  return wal_append(type, w.data());
}

SecureStoreServer::~SecureStoreServer() { *alive_ = false; }

Bytes SecureStoreServer::snapshot() const {
  // Stores plus the audit chain: a reboot must not let a server shed its
  // own history (the chain is the tamper evidence auditors rely on).
  // A persistent engine keeps its records in its own files (SSTables +
  // manifest); the blob then carries only contexts and metadata.
  Writer w;
  w.bytes(storage::make_snapshot(*items_, contexts_, /*include_records=*/!items_->persistent()));
  w.bytes(audit_.serialize());
  // The WAL position this snapshot covers: a booting server replays only
  // entries after it. Clamped by the hold floor — held writes live only in
  // the WAL, so the blob must not claim coverage past them.
  w.u64(covered_lsn_target());
  return w.take();
}

void SecureStoreServer::restore(BytesView snapshot_blob) {
  Reader r(snapshot_blob);
  const Bytes stores = r.bytes();
  const Bytes audit = r.bytes();
  const std::uint64_t covered = r.u64();
  r.expect_end();
  storage::restore_snapshot(stores, *items_, contexts_);
  storage::AuditLog restored = storage::AuditLog::deserialize(audit);
  if (!restored.verify()) throw DecodeError("server snapshot: audit chain broken");
  audit_ = std::move(restored);
  wal_covered_lsn_ = covered;
}

void SecureStoreServer::save_snapshot_now() {
  if (!options_.snapshot_path.has_value()) return;
  // Flush-before-truncate (DESIGN.md §12): a persistent engine must have
  // every record the blob's covered LSN implies sitting durably in its own
  // files before any WAL segment is dropped. flush() returns the LSN the
  // engine's manifest now covers; truncation stays below BOTH coverages.
  std::uint64_t engine_covered = std::numeric_limits<std::uint64_t>::max();
  if (items_->persistent()) {
    engine_covered = items_->flush();
    items_->checkpoint();
  }
  storage::save_snapshot_file(*options_.snapshot_path, snapshot());
  if (wal_ != nullptr) {
    // Everything up to here is durable in the snapshot (the file and its
    // directory are fsynced): dead segments can go.
    wal_covered_lsn_ = std::min(covered_lsn_target(), engine_covered);
    wal_->truncate_up_to(wal_covered_lsn_);
  }
}

void SecureStoreServer::set_group_policy(const GroupPolicy& policy) {
  policies_[policy.group] = policy;
}

const GroupPolicy& SecureStoreServer::group_policy(GroupId group) const {
  const auto it = policies_.find(group);
  return it != policies_.end() ? it->second : default_policy_;
}

bool SecureStoreServer::accept_request(NodeId /*from*/, net::MsgType /*type*/) { return true; }

std::optional<std::optional<std::pair<net::MsgType, Bytes>>> SecureStoreServer::preempt_request(
    NodeId /*from*/, net::MsgType /*type*/, BytesView /*body*/) {
  return std::nullopt;
}

std::optional<std::pair<net::MsgType, Bytes>> SecureStoreServer::filter_response(
    NodeId /*from*/, net::MsgType /*request_type*/, BytesView /*request_body*/,
    std::optional<std::pair<net::MsgType, Bytes>> honest) {
  return honest;
}

const Bytes* SecureStoreServer::client_key(ClientId client) const {
  const auto it = config_.client_keys.find(client.value);
  return it != config_.client_keys.end() ? &it->second : nullptr;
}

bool SecureStoreServer::authorized(const std::optional<AuthToken>& token, ClientId client,
                                   GroupId group, Rights needed) const {
  if (!token_verifier_.has_value()) return true;  // authorization disabled
  return token_verifier_->check(token, client, group, needed, node_.transport().now());
}

bool SecureStoreServer::owns_group(GroupId group) const {
  return !hash_ring_.has_value() || hash_ring_->shard_for(group) == options_.shard_id;
}

bool SecureStoreServer::install_ring(const shard::SignedRingState& candidate) {
  // Steady-state gossip re-offers the same version constantly; that is not
  // a rejection worth counting.
  if (ring_.has_value() && candidate.ring.version <= ring_->ring.version) return false;
  if (!candidate.verify(config_.ring_authority_key)) {
    // Also the unsharded path: an empty authority key verifies nothing, so
    // deployments without sharding ignore ring traffic wholesale.
    ring_rejected_.inc();
    return false;
  }
  try {
    hash_ring_.emplace(candidate.ring);
  } catch (const std::invalid_argument&) {
    ring_rejected_.inc();  // signed but structurally unusable
    return false;
  }
  ring_ = candidate;
  ring_bytes_ = ring_->serialize();
  ring_installed_.inc();
  return true;
}

void SecureStoreServer::install_ring_bytes(NodeId /*from*/, BytesView body) {
  try {
    install_ring(shard::SignedRingState::deserialize(body));
  } catch (const DecodeError&) {
    ring_rejected_.inc();
  }
}

std::optional<GroupId> SecureStoreServer::request_group(net::MsgType type, BytesView body) {
  // A second decode of the body on the sharded path only; the dispatch
  // switch re-decodes because fault hooks sit between here and there.
  try {
    switch (type) {
      case net::MsgType::kContextRead:
        return ContextReadReq::deserialize(body).group;
      case net::MsgType::kContextWrite:
        return ContextWriteReq::deserialize(body).stored.context.group();
      case net::MsgType::kMetaRequest:
        return MetaReq::deserialize(body).group;
      case net::MsgType::kRead:
        return ReadReq::deserialize(body).group;
      case net::MsgType::kWrite:
        return WriteReq::deserialize(body).record.group;
      case net::MsgType::kLogRead:
        return LogReadReq::deserialize(body).group;
      case net::MsgType::kReconstruct:
        return ReconstructReq::deserialize(body).group;
      default:
        return std::nullopt;  // not group-scoped (audit reads, gossip, ...)
    }
  } catch (const DecodeError&) {
    return std::nullopt;  // malformed: the dispatch path drops it anyway
  }
}

bool SecureStoreServer::import_record(const WriteRecord& record) {
  if (record.flags & kScattered) return false;
  if (!validate_record(record)) return false;
  apply_with_holds(record);
  return true;
}

bool SecureStoreServer::import_context(const StoredContext& stored) {
  const Bytes* key = client_key(stored.owner);
  if (key == nullptr || !stored.verify(*key)) return false;
  if (contexts_.apply(stored)) {
    Writer w;
    stored.encode(w);
    wal_append(storage::WalEntryType::kContext, w.data());
  }
  return true;
}

namespace {

/// The shed-able set: client data requests, each of which the client retries
/// under backoff. Everything quorum-critical — gossip anti-entropy,
/// stability certificates (oneways that never reach handle_request) and
/// responses to rounds already admitted — stays outside this set, so
/// shedding degrades throughput, never safety.
bool sheddable_request(net::MsgType type) {
  switch (type) {
    case net::MsgType::kContextRead:
    case net::MsgType::kContextWrite:
    case net::MsgType::kMetaRequest:
    case net::MsgType::kRead:
    case net::MsgType::kWrite:
    case net::MsgType::kLogRead:
    case net::MsgType::kReconstruct:
    case net::MsgType::kAuditRead:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::optional<std::pair<net::MsgType, Bytes>> SecureStoreServer::maybe_shed(net::MsgType type) {
  if (!admission_.options().enabled || !sheddable_request(type)) return std::nullopt;
  AdmissionSignals signals;
  signals.net_backlog = node_.transport().backlog(node_.id());
  signals.wal_append_ewma_us = admission_.wal_append_ewma_us();
  signals.engine = items_->pressure();
  if (!admission_.should_shed(signals)) return std::nullopt;
  shed_.inc();
  requests_shed_ += 1;
  // The refused request never reaches decode/crypto/WAL, so its service
  // slot goes back to the transport's capacity model: a refusal costs O(1),
  // which is what lets goodput plateau instead of collapsing past
  // saturation (EXPERIMENTS.md E18).
  node_.transport().refund_service(node_.id());
  if (events_.enabled()) {
    events_.instant(node_.id().value, 0, active_trace_, "server.shed", "server",
                    static_cast<std::uint64_t>(node_.transport().now()));
  }
  return {{net::MsgType::kOverloaded, overloaded_body(admission_.retry_after_us())}};
}

obs::ServerSample SecureStoreServer::introspect_status() const {
  const SimTime now = node_.transport().now();
  obs::ServerSample s;
  s.node = node_.id().value;
  s.shard = options_.shard_id;
  s.now_us = now;
  s.uptime_us = now - boot_at_;
  s.ring_version = ring_version();
  s.gossip_ticks = gossip_->ticks();
  // Staleness is measured from boot until the first tick lands, so a
  // gossip engine that never starts reads as increasingly stale instead of
  // eternally fresh.
  const SimTime last_activity = std::max<SimTime>(gossip_->last_tick_at(), boot_at_);
  s.gossip_idle_us = now - last_activity;
  s.wal_append_ewma_us = admission_.wal_append_ewma_us();
  s.wal_append_p99_us = local_wal_append_us_.snapshot().p99();
  const storage::StorageEngine::Pressure pressure = items_->pressure();
  s.compaction_lag = pressure.compaction_lag;
  s.memtable_bytes = pressure.memtable_bytes;
  s.requests = requests_dispatched_;
  s.shed = requests_shed_;
  s.net_backlog = node_.transport().backlog(node_.id());
  s.hold_depth = holds_.size();
  s.overloaded = admission_.overloaded();
  return s;
}

std::optional<std::pair<net::MsgType, Bytes>> SecureStoreServer::handle_introspect(
    BytesView body) {
  const Options::IntrospectOptions& opts = options_.introspect;
  if (!opts.enabled) return std::nullopt;
  // Token bucket on the transport clock, all requesters pooled: the
  // endpoint is unauthenticated, so per-peer buckets would just hand an
  // attacker more buckets.
  const SimTime now = node_.transport().now();
  introspect_tokens_ = std::min(
      opts.burst, introspect_tokens_ + to_seconds(now - introspect_refill_at_) *
                                           opts.rate_per_sec);
  introspect_refill_at_ = now;
  if (introspect_tokens_ < 1.0) {
    introspect_limited_.inc();
    return std::nullopt;  // silence, not an error a flooder can amplify
  }
  introspect_tokens_ -= 1.0;

  net::IntrospectRequest req;
  try {
    Reader r(body);
    req = net::IntrospectRequest::decode(r);
  } catch (const DecodeError&) {
    return std::nullopt;
  }

  net::IntrospectResponse resp;
  resp.format = req.format;
  switch (req.format) {
    case net::IntrospectFormat::kStatus:
      resp.sample = introspect_status();
      break;
    case net::IntrospectFormat::kPrometheus:
      resp.text = obs::to_prometheus(node_.transport().registry().snapshot());
      break;
    case net::IntrospectFormat::kJson:
      resp.text = obs::to_json(node_.transport().registry().snapshot(), "introspect");
      break;
    case net::IntrospectFormat::kEvents: {
      constexpr std::uint32_t kMaxEventsDump = 4096;
      resp.text =
          obs::to_chrome_trace(events_.recent(std::min(req.max_events, kMaxEventsDump)));
      break;
    }
  }
  Writer w;
  resp.encode(w);
  return {{net::MsgType::kAck, w.take()}};
}

const Bytes& SecureStoreServer::overloaded_body(std::uint32_t retry_after_us) {
  auto it = overload_bodies_.find(retry_after_us);
  if (it == overload_bodies_.end()) {
    OverloadedResp resp;
    resp.retry_after_us = retry_after_us;
    resp.signature = crypto::meter_sign(keys_.seed, overload_statement(retry_after_us));
    it = overload_bodies_.emplace(retry_after_us, resp.serialize()).first;
  }
  return it->second;
}

std::optional<std::pair<net::MsgType, Bytes>> SecureStoreServer::handle_request(
    NodeId from, net::MsgType type, BytesView body, const obs::TraceContext& trace) {
  // Request mix is counted before the fault hooks: the metric reflects what
  // arrived, not what a muted server deigned to process.
  const auto counter = req_counters_.find(static_cast<std::uint16_t>(type));
  (counter != req_counters_.end() ? *counter->second : req_other_).inc();
  requests_dispatched_ += 1;
  active_trace_ = trace;
  if (!accept_request(from, type)) return std::nullopt;
  if (auto preempted = preempt_request(from, type, body); preempted.has_value()) {
    return std::move(*preempted);
  }

  // Admission control (DESIGN.md §13): refuse new client work while live
  // pressure is past the watermarks, before any decode/crypto/WAL cost is
  // paid — shedding here, before state mutation, is what makes "a shed
  // request is never acked" structural rather than probabilistic.
  if (auto refusal = maybe_shed(type); refusal.has_value()) return refusal;

  // Sharded: group-scoped requests for a shard this server does not own are
  // rejected with the signed ring attached, so a stale client can refresh
  // its router and re-route (DESIGN.md §11). Checked before the honest
  // handlers — a misroute must fail loudly, not masquerade as kNotFound.
  if (hash_ring_.has_value()) {
    if (const std::optional<GroupId> group = request_group(type, body);
        group.has_value() && !owns_group(*group)) {
      wrong_shard_.inc();
      return {{net::MsgType::kWrongShard, ring_bytes_}};
    }
  }

  std::optional<std::pair<net::MsgType, Bytes>> honest;
  try {
    switch (type) {
      case net::MsgType::kContextRead:
        honest = {net::MsgType::kContextRead,
                  handle_context_read(ContextReadReq::deserialize(body))};
        break;
      case net::MsgType::kContextWrite:
        honest = {net::MsgType::kAck, handle_context_write(ContextWriteReq::deserialize(body))};
        break;
      case net::MsgType::kMetaRequest:
        honest = {net::MsgType::kMetaRequest, handle_meta(MetaReq::deserialize(body))};
        break;
      case net::MsgType::kRead:
        honest = {net::MsgType::kRead, handle_read(ReadReq::deserialize(body))};
        break;
      case net::MsgType::kWrite:
        honest = {net::MsgType::kWrite, handle_write(WriteReq::deserialize(body))};
        break;
      case net::MsgType::kLogRead:
        honest = {net::MsgType::kLogRead, handle_log_read(LogReadReq::deserialize(body))};
        break;
      case net::MsgType::kReconstruct:
        honest = {net::MsgType::kReconstruct,
                  handle_reconstruct(ReconstructReq::deserialize(body))};
        break;
      case net::MsgType::kAuditRead:
        honest = {net::MsgType::kAuditRead, audit_.serialize()};
        break;
      case net::MsgType::kIntrospect:
        honest = handle_introspect(body);
        break;
      default:
        return std::nullopt;  // unknown request: ignore
    }
  } catch (const DecodeError&) {
    return std::nullopt;  // malformed request: ignore
  }

  return filter_response(from, type, body, std::move(honest));
}

std::vector<std::optional<std::pair<net::MsgType, Bytes>>> SecureStoreServer::handle_request_batch(
    std::vector<net::IncomingRequest>& batch) {
  batch_size_.observe(static_cast<double>(batch.size()));

  // One span covers the wakeup's worth of requests, parented to the first
  // sampled context in the batch. Emitted only for real batches so a
  // single-request flow keeps its exact span sequence.
  if (batch.size() > 1) {
    for (const net::IncomingRequest& item : batch) {
      if (events_.want(item.trace)) {
        events_.span(node_.id().value, item.trace, "server.batch", "server",
                     static_cast<std::uint64_t>(node_.transport().now()), 0);
        break;
      }
    }
  }

  // Pre-verify the batch's client writes as ONE Ed25519 batch: decode each
  // kWrite body, settle authorization / structure / value digest per
  // record (all the checks the scalar path short-circuits on before
  // touching the signature), then check the surviving signatures with a
  // single interleaved multi-scalar multiplication. handle_write consumes
  // the verdict through prevalidated_write_.
  std::vector<std::optional<bool>> prevalidated(batch.size());
  std::vector<std::size_t> sig_index;    // batch index per signature candidate
  std::vector<WriteRecord> sig_records;  // owns the signed-payload sources
  std::vector<Bytes> sig_payloads;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].type != net::MsgType::kWrite) continue;
    WriteReq req;
    try {
      req = WriteReq::deserialize(batch[i].body);
    } catch (const DecodeError&) {
      continue;  // handle_request will drop it the same way
    }
    const WriteRecord& record = req.record;
    const Bytes* key = client_key(record.writer);
    if (key == nullptr ||
        !authorized(req.token, record.writer, record.group, Rights::kWrite) ||
        !validate_record_structure(record) ||
        crypto::meter_digest(record.value) != record.value_digest) {
      prevalidated[i] = false;
      continue;
    }
    sig_index.push_back(i);
    sig_records.push_back(std::move(req.record));
    sig_payloads.push_back(sig_records.back().signed_payload());
  }
  if (sig_index.size() == 1) {
    // A batch of one amortizes nothing; the scalar path meters identically.
    const WriteRecord& record = sig_records.front();
    prevalidated[sig_index.front()] =
        crypto::meter_verify(*client_key(record.writer), sig_payloads.front(), record.signature);
  } else if (sig_index.size() > 1) {
    std::vector<crypto::BatchVerifyItem> items;
    items.reserve(sig_index.size());
    for (std::size_t j = 0; j < sig_index.size(); ++j) {
      items.push_back(crypto::BatchVerifyItem{*client_key(sig_records[j].writer),
                                              sig_payloads[j], sig_records[j].signature});
    }
    const crypto::BatchVerifyResult verdict = crypto::ed25519_batch_verify(items);
    for (std::size_t j = 0; j < sig_index.size(); ++j) {
      prevalidated[sig_index[j]] = verdict.valid[j];
    }
  }

  // Dispatch each request through the full scalar path — fault hooks,
  // request-mix counters and response filtering behave identically whether
  // or not the transport batched the delivery.
  std::vector<std::optional<std::pair<net::MsgType, Bytes>>> responses;
  responses.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    prevalidated_write_ = prevalidated[i];
    responses.push_back(
        handle_request(batch[i].from, batch[i].type, batch[i].body, batch[i].trace));
    prevalidated_write_.reset();
  }
  return responses;
}

void SecureStoreServer::handle_oneway(NodeId from, net::MsgType type, BytesView body) {
  const auto counter = req_counters_.find(static_cast<std::uint16_t>(type));
  (counter != req_counters_.end() ? *counter->second : req_other_).inc();
  active_trace_ = node_.incoming_trace();
  if (!accept_request(from, type)) return;  // fault hook covers oneways too
  switch (type) {
    case net::MsgType::kGossipDigest:
    case net::MsgType::kGossipUpdates:
    case net::MsgType::kGossipRequest:
    case net::MsgType::kGossipRing:
      gossip_->handle(from, type, body);
      return;
    case net::MsgType::kStability:
      try {
        handle_stability(StabilityMsg::deserialize(body));
      } catch (const DecodeError&) {
      }
      return;
    default:
      return;
  }
}

Bytes SecureStoreServer::handle_context_read(const ContextReadReq& req) {
  ContextReadResp resp;
  const StoredContext* stored = contexts_.get(req.owner, req.group);
  if (stored != nullptr) resp.stored = *stored;
  return resp.serialize();
}

Bytes SecureStoreServer::handle_context_write(const ContextWriteReq& req) {
  AckResp resp;
  const Bytes* key = client_key(req.stored.owner);
  // "Non-faulty servers need to verify the signature to ensure that they do
  // not overwrite their context data with spurious information" (§6).
  if (key != nullptr && req.stored.verify(*key)) {
    if (contexts_.apply(req.stored)) {
      Writer w;
      req.stored.encode(w);
      wal_append(storage::WalEntryType::kContext, w.data());
    }
    resp.ok = true;
  }
  return resp.serialize();
}

Bytes SecureStoreServer::handle_meta(const MetaReq& req) {
  MetaResp resp;
  const WriteRecord* current = items_->current(req.item);
  if (current != nullptr &&
      authorized(req.token, req.requester, current->group, Rights::kRead)) {
    resp.meta = req.include_value ? *current : current->meta_only();
    resp.value_included = req.include_value;
    resp.faulty_writer = items_->flagged_faulty(req.item);
  }
  return resp.serialize();
}

Bytes SecureStoreServer::handle_read(const ReadReq& req) {
  ReadResp resp;
  const WriteRecord* current = items_->current(req.item);
  if (current != nullptr &&
      authorized(req.token, req.requester, current->group, Rights::kRead)) {
    // Return the newest we have; the client accepts it iff it satisfies the
    // timestamp it selected in the meta phase.
    resp.record = *current;
    resp.faulty_writer = items_->flagged_faulty(req.item);
  }
  return resp.serialize();
}

Bytes SecureStoreServer::handle_write(const WriteReq& req) {
  WriteResp resp;
  const WriteRecord& record = req.record;
  // server.verify span: authorization + full record validation. Span
  // timestamps sit on the transport clock (so they line up with the client
  // spans); durations for in-memory work are measured in wall µs, which is
  // also the only honest duration under the simulator (DESIGN.md §8).
  const bool traced = events_.want(active_trace_);
  const auto verify_ts = static_cast<std::uint64_t>(node_.transport().now());
  const std::uint64_t verify_wall = traced ? obs::wall_now_us() : 0;
  // On the batched path the verdict (authorization included) was settled by
  // handle_request_batch's single Ed25519 batch verification.
  const bool valid =
      prevalidated_write_.has_value()
          ? *prevalidated_write_
          : (authorized(req.token, record.writer, record.group, Rights::kWrite) &&
             validate_record(record));
  if (traced) {
    events_.span(node_.id().value, active_trace_, "server.verify", "server", verify_ts,
                 obs::wall_now_us() - verify_wall);
  }
  if (!valid) return resp.serialize();

  const bool visible = apply_with_holds(record);
  resp.ok = true;

  // Remember which client operation made this record visible, so gossip
  // hand-offs carry its context (before push_record, which looks it up).
  if (visible && traced) gossip_->note_origin(record, active_trace_);

  // Rumor mongering: spread a fresh client write immediately instead of
  // waiting for the next anti-entropy tick (§5.2: "new data values could be
  // sent to one or more servers at a frequency that can be tuned").
  if (visible && gossip_->config().push_on_write) gossip_->push_record(record);

  // Multi-writer deployments with Byzantine clients get a stability share
  // in the ack; the writer aggregates 2b+1 of these into the certificate
  // that lets servers garbage collect their logs (§5.3).
  const GroupPolicy& policy = group_policy(record.group);
  if (visible && policy.sharing == SharingMode::kMultiWriter &&
      policy.trust == ClientTrust::kByzantine) {
    resp.stability_share =
        crypto::meter_sign(keys_.seed, stability_statement(record.item, record.ts));
  }
  return resp.serialize();
}

Bytes SecureStoreServer::handle_log_read(const LogReadReq& req) {
  LogReadResp resp;
  std::vector<WriteRecord> log = items_->log(req.item);
  if (!log.empty() && !authorized(req.token, req.requester, log.front().group, Rights::kRead)) {
    return LogReadResp{}.serialize();
  }
  resp.records = std::move(log);
  resp.faulty_writer = items_->flagged_faulty(req.item);
  return resp.serialize();
}

Bytes SecureStoreServer::handle_reconstruct(const ReconstructReq& req) {
  ReconstructResp resp;
  resp.metas = items_->group_meta(req.group);
  return resp.serialize();
}

void SecureStoreServer::handle_stability(const StabilityMsg& msg) {
  // Trust the certificate only if 2b+1 distinct servers signed the exact
  // statement: then at least b+1 correct servers store the new value and
  // superseded log entries are safe to drop (§5.3).
  if (msg.certificate.statement() != stability_statement(msg.item, msg.ts)) return;
  if (!msg.certificate.satisfies(config_.stability_threshold(), config_.server_keys)) return;
  items_->prune_log(msg.item, msg.ts);
}

bool SecureStoreServer::validate_record(const WriteRecord& record) const {
  const Bytes* key = client_key(record.writer);
  if (key == nullptr) return false;
  if (!validate_record_structure(record)) return false;
  return record.verify(*key);
}

bool SecureStoreServer::validate_record_structure(const WriteRecord& record) const {
  const GroupPolicy& policy = group_policy(record.group);
  if (record.model != policy.model) return false;

  if (policy.sharing == SharingMode::kMultiWriter) {
    // Multi-writer timestamps must be the §5.3 3-tuple, bound to this writer
    // and this value.
    if (record.ts.writer != record.writer) return false;
    if (record.ts.digest.empty() || record.ts.digest != record.value_digest) return false;
  } else {
    // Single-writer: version-only timestamps.
    if (record.ts.writer != ClientId{} || !record.ts.digest.empty()) return false;
  }
  return true;
}

std::vector<bool> SecureStoreServer::apply_gossip_batch(
    const std::vector<std::pair<WriteRecord, obs::TraceContext>>& records, NodeId /*from*/) {
  std::vector<bool> accepted(records.size(), false);
  // Same gate sequence as the per-record ApplyFn — scattered exclusion,
  // writer key, structure, value digest — with the signatures of every
  // survivor settled in one batch verification.
  std::vector<std::size_t> sig_index;
  std::vector<Bytes> sig_payloads;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const WriteRecord& record = records[i].first;
    if (record.flags & kScattered) continue;
    if (!owns_group(record.group)) continue;  // sharded: not ours to store
    const Bytes* key = client_key(record.writer);
    if (key == nullptr || !validate_record_structure(record)) continue;
    if (crypto::meter_digest(record.value) != record.value_digest) continue;
    sig_index.push_back(i);
    sig_payloads.push_back(record.signed_payload());
  }
  if (sig_index.size() == 1) {
    const WriteRecord& record = records[sig_index.front()].first;
    if (crypto::meter_verify(*client_key(record.writer), sig_payloads.front(),
                             record.signature)) {
      accepted[sig_index.front()] = true;
    }
  } else if (sig_index.size() > 1) {
    std::vector<crypto::BatchVerifyItem> items;
    items.reserve(sig_index.size());
    for (std::size_t j = 0; j < sig_index.size(); ++j) {
      const WriteRecord& record = records[sig_index[j]].first;
      items.push_back(
          crypto::BatchVerifyItem{*client_key(record.writer), sig_payloads[j], record.signature});
    }
    const crypto::BatchVerifyResult verdict = crypto::ed25519_batch_verify(items);
    for (std::size_t j = 0; j < sig_index.size(); ++j) {
      if (verdict.valid[j]) accepted[sig_index[j]] = true;
    }
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (accepted[i]) apply_with_holds(records[i].first);
  }
  return accepted;
}

bool SecureStoreServer::apply_with_holds(const WriteRecord& record) {
  // Apply latency is wall time (in-memory work, identical under sim).
  const std::uint64_t apply_start = obs::wall_now_us();
  const auto apply_ts = static_cast<std::uint64_t>(node_.transport().now());
  const GroupPolicy& policy = group_policy(record.group);
  const bool needs_hold = policy.sharing == SharingMode::kMultiWriter &&
                          policy.trust == ClientTrust::kByzantine &&
                          record.model == ConsistencyModel::kCC;

  const auto have = [this](ItemId item, const Timestamp& ts) {
    const WriteRecord* current = items_->current(item);
    return current != nullptr && !(current->ts < ts);
  };

  if (needs_hold && !storage::HoldQueue::dependencies_met(record, have)) {
    // Establish the hold floor before the append: from this entry on, the
    // WAL holds acked state that no snapshot or engine flush reflects, so
    // coverage claims are clamped below it until the queue drains.
    if (!hold_lsn_floor_.has_value()) {
      if (wal_replaying_) {
        hold_lsn_floor_ = replay_lsn_ == 0 ? 0 : replay_lsn_ - 1;
      } else if (wal_ != nullptr) {
        hold_lsn_floor_ = wal_->last_lsn();
      }
    }
    holds_.hold(record);
    hold_depth_.set(static_cast<std::int64_t>(holds_.size()));
    // Held writes are acked too, so they must survive a crash; replay
    // re-parks them until their dependencies replay.
    wal_append_record(storage::WalEntryType::kWrite, record);
    const std::uint64_t held_elapsed = obs::wall_now_us() - apply_start;
    apply_us_.observe(static_cast<double>(held_elapsed));
    if (events_.want(active_trace_)) {
      events_.span(node_.id().value, active_trace_, "server.apply.held", "server", apply_ts,
                   held_elapsed);
    }
    return false;
  }

  const storage::ApplyResult applied = items_->apply(record);
  if (applied == storage::ApplyResult::kEquivocation) equivocations_.inc();
  if (applied != storage::ApplyResult::kDuplicate) {
    // Logged even on kEquivocation (the record is not stored, but replay
    // needs both conflicting records to re-derive the faulty-writer flag).
    wal_append_record(storage::WalEntryType::kWrite, record);
    audit_.append(record, node_.transport().now());
  }

  // A new arrival can transitively unblock held writes.
  while (true) {
    std::vector<WriteRecord> released = holds_.release(have);
    if (released.empty()) break;
    hold_depth_.set(static_cast<std::int64_t>(holds_.size()));
    for (const WriteRecord& unblocked : released) {
      const storage::ApplyResult result = items_->apply(unblocked);
      if (result == storage::ApplyResult::kEquivocation) equivocations_.inc();
      if (result != storage::ApplyResult::kDuplicate) {
        wal_append_record(storage::WalEntryType::kRelease, unblocked);
        audit_.append(unblocked, node_.transport().now());
      }
    }
  }
  if (holds_.size() == 0 && hold_lsn_floor_.has_value()) {
    // Queue drained: every formerly-held write is in the engine now, so
    // the clamp can lift and the watermark catch up to the WAL head.
    hold_lsn_floor_.reset();
    if (wal_ != nullptr && !wal_replaying_) note_engine_watermark(wal_->last_lsn());
  }
  const std::uint64_t elapsed = obs::wall_now_us() - apply_start;
  apply_us_.observe(static_cast<double>(elapsed));
  if (events_.want(active_trace_)) {
    events_.span(node_.id().value, active_trace_, "server.apply", "server", apply_ts, elapsed);
  }
  return true;
}

}  // namespace securestore::core
