// Client-side confidentiality (§5.2, §5.3).
//
// "The owner or writing client can store all its data items in encrypted
// form... Servers do not know this key and hence, malicious servers cannot
// disclose any information to unauthorized clients."
//
// `AeadValueCodec` encrypts values with ChaCha20-Poly1305 under per-item
// keys derived (HKDF) from a master key held by the writer and shared with
// authorized readers out of band (the paper defers key distribution to
// secure-multicast-style schemes [16]). The item uid is the HKDF info and
// the AEAD aad, binding ciphertexts to their item. Meta-data stays in
// plaintext because servers order and disseminate by it (§5.2).
//
// Re-keying (owner changes its key): `rekey` decrypts under the old master
// and re-encrypts under the new, the read-reencrypt-store-back cycle the
// paper describes.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/rng.h"

namespace securestore::core {

/// Transforms values on their way to / from the store. Implementations must
/// be deterministic in structure (decode(encode(v)) == v) but may randomize
/// encodings (nonces).
class ValueCodec {
 public:
  virtual ~ValueCodec() = default;

  virtual Bytes encode(ItemId item, BytesView plaintext) = 0;
  /// nullopt = authentication failure (tampered or wrong key).
  virtual std::optional<Bytes> decode(ItemId item, BytesView stored) = 0;
};

/// Pass-through codec for data with no confidentiality requirement.
class PlainValueCodec final : public ValueCodec {
 public:
  Bytes encode(ItemId /*item*/, BytesView plaintext) override {
    return Bytes(plaintext.begin(), plaintext.end());
  }
  std::optional<Bytes> decode(ItemId /*item*/, BytesView stored) override {
    return Bytes(stored.begin(), stored.end());
  }
};

/// Epoch-keyed codec for group-shared data (see group_key.h): every
/// ciphertext is prefixed with the epoch whose key sealed it, so readers
/// can decrypt history across re-keys while revoked members (who never
/// learn post-revocation epoch keys) are locked out going forward.
class EpochCodec final : public ValueCodec {
 public:
  EpochCodec(GroupId group, Rng rng);

  /// Registers an epoch key; the highest registered epoch becomes current.
  void add_epoch(std::uint32_t epoch, Bytes key);
  std::uint32_t current_epoch() const { return current_; }
  bool knows_epoch(std::uint32_t epoch) const { return keys_.contains(epoch); }

  Bytes encode(ItemId item, BytesView plaintext) override;
  std::optional<Bytes> decode(ItemId item, BytesView stored) override;

 private:
  Bytes item_key(std::uint32_t epoch, ItemId item) const;

  GroupId group_;
  Rng rng_;
  std::uint32_t current_ = 0;
  std::map<std::uint32_t, Bytes> keys_;
};

class AeadValueCodec final : public ValueCodec {
 public:
  /// `master_key` is the writer/reader shared secret (any length; HKDF
  /// normalizes it). `rng` supplies nonces.
  AeadValueCodec(Bytes master_key, Rng rng);

  Bytes encode(ItemId item, BytesView plaintext) override;
  std::optional<Bytes> decode(ItemId item, BytesView stored) override;

  /// Decrypts `stored` under the old master key and re-encrypts it under
  /// `new_master` (key-change support, §5.2). Returns nullopt if `stored`
  /// does not authenticate under the current key.
  std::optional<Bytes> rekey(ItemId item, BytesView stored, const AeadValueCodec& new_master);

 private:
  Bytes item_key(ItemId item) const;

  Bytes master_key_;
  Rng rng_;
};

}  // namespace securestore::core
