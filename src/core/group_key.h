// Group key distribution (§5.2/§5.3).
//
// "The key that is used to encrypt the data values must be distributed to
// readers... If there is a change in the set of clients that has access to
// the data, key distribution and management schemes similar to those
// discussed in secure multicast communication [16] have to be employed."
//
// This module is that scheme, kept deliberately simple (flat re-key rather
// than [16]'s logarithmic key trees — group sizes here are households, not
// multicast trees):
//
//  * the data owner holds an X25519 identity; every authorized reader
//    registers its X25519 public key;
//  * data values are encrypted under an *epoch key*; any membership change
//    starts a new epoch with a fresh key;
//  * the owner publishes a `KeyBundle` — the epoch key wrapped separately
//    for each member under HKDF(X25519(owner, member)) — as an ordinary
//    signed item IN the secure store itself, so key distribution rides on
//    the same replication, integrity and availability machinery as data;
//  * `EpochCodec` tags each ciphertext with its epoch, letting readers
//    decrypt history after re-keys while revoked members are locked out of
//    every epoch after their removal.
//
// The paper's caveat stands: revocation cannot un-disclose the past — "if
// the old key is compromised, confidentiality [of old values] is lost."
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/confidential.h"
#include "crypto/x25519.h"
#include "util/ids.h"
#include "util/serial.h"

namespace securestore::core {

/// The reserved item uid a group's current key bundle is stored under.
ItemId key_bundle_item(GroupId group);

/// One member's wrapped copy of the epoch key.
struct WrappedKey {
  ClientId member{};
  Bytes nonce;
  Bytes sealed;  // AEAD(epoch key) under the pairwise wrap key
};

struct KeyBundle {
  GroupId group{};
  std::uint32_t epoch = 0;
  Bytes owner_dh_public;
  std::vector<WrappedKey> members;

  Bytes serialize() const;
  static KeyBundle deserialize(BytesView data);
};

/// Owner side: membership and epoch management.
class GroupKeyOwner {
 public:
  GroupKeyOwner(GroupId group, crypto::DhKeyPair identity, Rng rng);

  GroupId group() const { return group_; }
  std::uint32_t epoch() const { return epoch_; }
  const Bytes& current_key() const { return current_key_; }
  const Bytes& dh_public() const { return identity_.public_key; }
  std::size_t member_count() const { return members_.size(); }

  /// Adding grants access to the CURRENT epoch onward (no re-key needed:
  /// the new member simply appears in the next published bundle).
  void add_member(ClientId member, Bytes dh_public);

  /// Removal revokes future access: starts a fresh epoch immediately.
  /// Returns false if the member was not present.
  bool remove_member(ClientId member);

  /// Forces a new epoch (e.g. suspected key compromise).
  void rotate();

  /// The bundle to publish for the current epoch.
  KeyBundle make_bundle();

  /// A codec primed with every epoch key issued so far (for the owner's
  /// own reads/writes, including pre-re-key history). Non-const: each codec
  /// forks an independent nonce stream.
  std::shared_ptr<EpochCodec> make_codec();

 private:
  GroupId group_;
  crypto::DhKeyPair identity_;
  Rng rng_;
  std::uint32_t epoch_ = 1;
  Bytes current_key_;
  std::map<std::uint32_t, Bytes> key_history_;       // epoch -> key
  std::map<ClientId, Bytes> members_;                // member -> dh public
};

/// Reader side: unwraps the epoch key for `self` from a bundle.
/// nullopt if self is not in the bundle or unwrapping fails.
std::optional<std::pair<std::uint32_t, Bytes>> unwrap_bundle(const KeyBundle& bundle,
                                                             ClientId self,
                                                             BytesView own_dh_private);

}  // namespace securestore::core
