#include "core/record.h"

#include <stdexcept>

#include "crypto/keys.h"

namespace securestore::core {

Bytes WriteRecord::signed_payload() const {
  Writer w;
  w.str("securestore.write.v1");  // domain separation
  w.u64(item.value);
  w.u64(group.value);
  w.u8(static_cast<std::uint8_t>(model));
  w.u8(flags);
  w.u32(writer.value);
  ts.encode(w);
  writer_context.encode(w);
  w.bytes(value_digest);
  return w.take();
}

void WriteRecord::sign(BytesView writer_seed) {
  value_digest = crypto::meter_digest(value);
  if (!ts.digest.empty() && ts.digest != value_digest) {
    throw std::invalid_argument("WriteRecord::sign: ts.digest does not match d(v)");
  }
  signature = crypto::meter_sign(writer_seed, signed_payload());
}

bool WriteRecord::verify(BytesView writer_public_key) const {
  if (!verify_meta(writer_public_key)) return false;
  // One digest recomputation; counted so E3's totals reflect it.
  return crypto::meter_digest(value) == value_digest;
}

bool WriteRecord::verify_meta(BytesView writer_public_key) const {
  if (!ts.digest.empty() && ts.digest != value_digest) return false;
  return crypto::meter_verify(writer_public_key, signed_payload(), signature);
}

WriteRecord WriteRecord::meta_only() const {
  WriteRecord meta = *this;
  meta.value.clear();
  return meta;
}

void WriteRecord::encode(Writer& w) const {
  w.u64(item.value);
  w.u64(group.value);
  w.u8(static_cast<std::uint8_t>(model));
  w.u8(flags);
  w.u32(writer.value);
  ts.encode(w);
  writer_context.encode(w);
  w.bytes(value);
  w.bytes(value_digest);
  w.bytes(signature);
}

WriteRecord WriteRecord::decode(Reader& r) {
  WriteRecord record;
  record.item = ItemId{r.u64()};
  record.group = GroupId{r.u64()};
  record.model = static_cast<ConsistencyModel>(r.u8());
  record.flags = r.u8();
  record.writer = ClientId{r.u32()};
  record.ts = Timestamp::decode(r);
  record.writer_context = Context::decode(r);
  record.value = r.bytes();
  record.value_digest = r.bytes();
  record.signature = r.bytes();
  return record;
}

Bytes WriteRecord::serialize() const {
  Writer w;
  encode(w);
  return w.take();
}

WriteRecord WriteRecord::deserialize(BytesView data) {
  Reader r(data);
  WriteRecord record = decode(r);
  r.expect_end();
  return record;
}

Bytes StoredContext::signed_payload() const {
  Writer w;
  w.str("securestore.context.v1");
  w.u32(owner.value);
  context.encode(w);
  return w.take();
}

void StoredContext::sign(BytesView owner_seed) {
  signature = crypto::meter_sign(owner_seed, signed_payload());
}

bool StoredContext::verify(BytesView owner_public_key) const {
  return crypto::meter_verify(owner_public_key, signed_payload(), signature);
}

void StoredContext::encode(Writer& w) const {
  w.u32(owner.value);
  context.encode(w);
  w.bytes(signature);
}

StoredContext StoredContext::decode(Reader& r) {
  StoredContext stored;
  stored.owner = ClientId{r.u32()};
  stored.context = Context::decode(r);
  stored.signature = r.bytes();
  return stored;
}

}  // namespace securestore::core
