#include "core/confidential.h"

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "util/serial.h"

namespace securestore::core {

EpochCodec::EpochCodec(GroupId group, Rng rng) : group_(group), rng_(std::move(rng)) {}

void EpochCodec::add_epoch(std::uint32_t epoch, Bytes key) {
  keys_[epoch] = std::move(key);
  current_ = std::max(current_, epoch);
}

Bytes EpochCodec::item_key(std::uint32_t epoch, ItemId item) const {
  Writer info;
  info.str("securestore.epochkey.v1");
  info.u64(group_.value);
  info.u32(epoch);
  info.u64(item.value);
  return crypto::hkdf_sha256(keys_.at(epoch), /*salt=*/{}, info.data(),
                             crypto::kChaChaKeySize);
}

Bytes EpochCodec::encode(ItemId item, BytesView plaintext) {
  if (current_ == 0) throw std::logic_error("EpochCodec: no epoch key registered");
  const Bytes key = item_key(current_, item);
  const Bytes nonce = rng_.bytes(crypto::kChaChaNonceSize);

  Writer aad;
  aad.u64(group_.value);
  aad.u32(current_);
  aad.u64(item.value);

  Writer out;
  out.u32(current_);
  out.raw(nonce);
  out.raw(crypto::aead_seal(key, nonce, aad.data(), plaintext));
  return out.take();
}

std::optional<Bytes> EpochCodec::decode(ItemId item, BytesView stored) {
  try {
    Reader r(stored);
    const std::uint32_t epoch = r.u32();
    if (!keys_.contains(epoch)) return std::nullopt;  // revoked before this epoch
    const Bytes nonce = r.raw(crypto::kChaChaNonceSize);
    const Bytes sealed = r.raw(r.remaining());

    Writer aad;
    aad.u64(group_.value);
    aad.u32(epoch);
    aad.u64(item.value);
    return crypto::aead_open(item_key(epoch, item), nonce, aad.data(), sealed);
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

AeadValueCodec::AeadValueCodec(Bytes master_key, Rng rng)
    : master_key_(std::move(master_key)), rng_(std::move(rng)) {}

Bytes AeadValueCodec::item_key(ItemId item) const {
  Writer info;
  info.str("securestore.itemkey.v1");
  info.u64(item.value);
  return crypto::hkdf_sha256(master_key_, /*salt=*/{}, info.data(), crypto::kChaChaKeySize);
}

Bytes AeadValueCodec::encode(ItemId item, BytesView plaintext) {
  const Bytes key = item_key(item);
  const Bytes nonce = rng_.bytes(crypto::kChaChaNonceSize);

  Writer aad;
  aad.u64(item.value);

  Bytes out = nonce;
  const Bytes sealed = crypto::aead_seal(key, nonce, aad.data(), plaintext);
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

std::optional<Bytes> AeadValueCodec::decode(ItemId item, BytesView stored) {
  if (stored.size() < crypto::kChaChaNonceSize + crypto::kPolyTagSize) return std::nullopt;
  const Bytes key = item_key(item);
  const BytesView nonce = stored.first(crypto::kChaChaNonceSize);
  const BytesView sealed = stored.subspan(crypto::kChaChaNonceSize);

  Writer aad;
  aad.u64(item.value);
  return crypto::aead_open(key, nonce, aad.data(), sealed);
}

std::optional<Bytes> AeadValueCodec::rekey(ItemId item, BytesView stored,
                                           const AeadValueCodec& new_master) {
  const auto plaintext = decode(item, stored);
  if (!plaintext.has_value()) return std::nullopt;
  // Encode under the new key; nonce randomness comes from this codec's rng.
  AeadValueCodec encoder(new_master.master_key_, rng_.fork());
  return encoder.encode(item, *plaintext);
}

}  // namespace securestore::core
