// Deployment configuration and the paper's quorum arithmetic (§5, §6).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "util/bytes.h"
#include "util/ids.h"
#include "util/time.h"

namespace securestore::core {

/// Which StorageEngine a server runs its versioned item store on
/// (DESIGN.md §12).
enum class StorageEngineKind : std::uint8_t {
  kMemory,  // everything resident (the seed's ItemStore)
  kLsm,     // memtable + SSTables; requires DurabilityOptions (WAL + disk)
};

/// Storage-engine selection and tuning. The defaults match the in-memory
/// engine's behavior; the LSM knobs only matter under kLsm.
struct EngineConfig {
  StorageEngineKind kind = StorageEngineKind::kMemory;
  /// Memtable flush threshold (approximate resident bytes).
  std::size_t memtable_budget_bytes = 4u << 20;
  /// L0 file count that triggers background compaction.
  std::uint32_t l0_compact_threshold = 4;
  /// Compaction output split size.
  std::size_t sst_target_bytes = 8u << 20;
};

/// Static deployment parameters shared by clients and servers.
struct StoreConfig {
  std::uint32_t n = 4;  // total servers
  std::uint32_t b = 1;  // bound on faulty servers (§4)

  std::vector<NodeId> servers;  // the n server node ids

  /// Directory of well-known public keys (§4: "clients and servers are
  /// assumed to own a secure private key for which the public key is well
  /// known").
  std::unordered_map<std::uint32_t, Bytes> client_keys;  // ClientId.value -> key
  std::unordered_map<NodeId, Bytes> server_keys;

  /// Operation deadline before a quorum call reports kTimeout.
  SimDuration op_timeout = seconds(5);

  /// How many extra servers a stale read escalates to per retry round
  /// before giving up (Fig. 2: "contact additional servers or try later").
  std::uint32_t read_escalation_step = 2;

  /// Multi-writer log retention when no stability certificate has pruned it.
  std::size_t max_log_entries = 16;

  /// Sharded deployments: the ring authority's Ed25519 public key. Servers
  /// and routers accept a ring state only under this key's signature, so a
  /// Byzantine server cannot advertise a forged membership (DESIGN.md §11).
  /// Empty = unsharded deployment; ring messages are ignored.
  Bytes ring_authority_key;

  /// Storage engine every server runs (DESIGN.md §12). Clients never see
  /// this — the wire protocol is engine-agnostic.
  EngineConfig engine;

  // --- Quorum arithmetic -------------------------------------------------

  /// Context read/write quorum: ⌈(n+b+1)/2⌉ (§5.1). Two such quorums
  /// intersect in >= b+1 servers, hence at least one non-faulty witness.
  std::uint32_t context_quorum() const { return (n + b + 1 + 1) / 2; }

  /// Data write/read set for honest-client deployments: b+1 (§5.2).
  std::uint32_t data_quorum_honest() const { return b + 1; }

  /// Data write/read set under Byzantine clients: 2b+1 (§5.3).
  std::uint32_t data_quorum_byzantine() const { return 2 * b + 1; }

  /// Matching replies needed in a §5.3 read: b+1.
  std::uint32_t agreement_threshold() const { return b + 1; }

  /// Stability certificate threshold for log pruning: 2b+1 (§5.3).
  std::uint32_t stability_threshold() const { return 2 * b + 1; }

  /// Classic Byzantine masking quorum for the baseline: ⌈(n+2b+1)/2⌉ (§6).
  std::uint32_t masking_quorum() const { return (n + 2 * b + 1 + 1) / 2; }

  void validate() const {
    if (servers.size() != n) throw std::invalid_argument("StoreConfig: servers.size() != n");
    if (n == 0) throw std::invalid_argument("StoreConfig: n == 0");
    if (context_quorum() > n) {
      throw std::invalid_argument("StoreConfig: context quorum exceeds n (b too large)");
    }
  }
};

/// Per-item-group policy, fixed at creation (§5.2).
struct GroupPolicy {
  GroupId group{};
  ConsistencyModel model = ConsistencyModel::kMRC;
  SharingMode sharing = SharingMode::kSingleWriter;
  ClientTrust trust = ClientTrust::kHonest;
};

}  // namespace securestore::core
