#include "core/admission.h"

#include <algorithm>

namespace securestore::core {
namespace {

/// Rounds up to the next power of two, so the retry-after hint takes only
/// a handful of distinct values and the server can cache one signature per
/// value instead of running Ed25519 per shed request.
std::uint32_t quantize_pow2(std::uint32_t us) {
  std::uint32_t bucket = 1;
  while (bucket < us) bucket <<= 1;
  return bucket;
}

}  // namespace

bool AdmissionController::should_shed(const AdmissionSignals& signals) {
  if (!options_.enabled) return false;

  // Severity of each signal relative to its *high* watermark; > 1.0 means
  // the signal alone justifies shedding.
  double severity = 0;
  const auto consider = [&severity](double value, double high) {
    if (high > 0) severity = std::max(severity, value / high);
  };
  consider(static_cast<double>(signals.net_backlog),
           static_cast<double>(options_.net_backlog_high));
  consider(signals.wal_append_ewma_us, options_.wal_append_high_us);
  if (signals.engine.memtable_budget > 0) {
    consider(static_cast<double>(signals.engine.memtable_bytes) /
                 static_cast<double>(signals.engine.memtable_budget),
             options_.memtable_overrun_high);
  }
  consider(static_cast<double>(signals.engine.compaction_lag),
           static_cast<double>(options_.compaction_lag_high));
  severity_ = severity;

  if (!overloaded_) {
    // Latch on when ANY signal crosses its high watermark.
    overloaded_ = severity >= 1.0;
  } else {
    // Latch off only when ALL signals are below their low watermarks.
    bool calm = signals.net_backlog < options_.net_backlog_low &&
                signals.wal_append_ewma_us < options_.wal_append_low_us &&
                signals.engine.compaction_lag < options_.compaction_lag_low;
    if (calm && signals.engine.memtable_budget > 0) {
      calm = static_cast<double>(signals.engine.memtable_bytes) <
             options_.memtable_overrun_low *
                 static_cast<double>(signals.engine.memtable_budget);
    }
    overloaded_ = !calm;
  }
  if (overloaded_) ++shed_decisions_;
  return overloaded_;
}

std::uint32_t AdmissionController::retry_after_us() const {
  // Scale the minimum hint by the overload severity: at the watermark the
  // hint is retry_after_min; a 10x-overloaded server asks for 10x longer.
  const double scale = std::max(1.0, severity_);
  const double raw = static_cast<double>(options_.retry_after_min) * scale;
  const auto capped = static_cast<std::uint32_t>(std::min(
      raw, static_cast<double>(options_.retry_after_max)));
  const std::uint32_t quantized = quantize_pow2(std::max<std::uint32_t>(capped, 1));
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      quantized, options_.retry_after_min, options_.retry_after_max));
}

}  // namespace securestore::core
