#include "core/auditor.h"

namespace securestore::core {

Auditor::Auditor(net::Transport& transport, NodeId network_id, StoreConfig config,
                 Options options)
    : node_(transport, network_id), config_(std::move(config)), options_(options) {
  config_.validate();
}

void Auditor::run(ReportCb done) {
  struct Collected {
    std::vector<std::pair<NodeId, storage::AuditLog>> logs;
    std::vector<NodeId> garbled;  // responded, but not with a parseable log
  };
  auto state = std::make_shared<Collected>();
  const std::size_t needed = config_.n - config_.b;

  net::QuorumCall::start(
      node_, config_.servers, net::MsgType::kAuditRead, /*body=*/{},
      [state](NodeId from, net::MsgType /*type*/, BytesView body) {
        try {
          state->logs.emplace_back(from, storage::AuditLog::deserialize(body));
        } catch (const DecodeError&) {
          state->garbled.push_back(from);
        }
        return false;  // hear from everyone
      },
      [state, needed, options = options_, done](net::QuorumOutcome /*outcome*/,
                                                std::size_t replies) {
        if (replies < needed) {
          done(Result<Auditor::Report>(Error::kInsufficientQuorum,
                                       "audit needs n-b responding servers"));
          return;
        }
        std::vector<std::pair<NodeId, const storage::AuditLog*>> views;
        views.reserve(state->logs.size());
        for (const auto& [server, log] : state->logs) views.emplace_back(server, &log);

        Auditor::Report report;
        report.logs_collected = state->logs.size();
        report.findings = storage::cross_audit(views, options.tolerate_tail);
        for (const NodeId server : state->garbled) {
          report.findings.push_back(storage::AuditFinding{
              storage::AuditFinding::Kind::kBrokenChain, server, {},
              "unparseable audit log"});
        }
        done(Result<Auditor::Report>(std::move(report)));
      },
      net::QuorumCall::Options{options_.round_timeout});
}

}  // namespace securestore::core
