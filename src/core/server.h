// SecureStoreServer: one of the n replicated servers S_1..S_n.
//
// Servers are deliberately *passive data repositories* (§1, §7): they store
// signed records and contexts, answer quorum requests, and disseminate
// updates via gossip. Consistency is the client's job. The only decisions a
// server makes are validations — signature checks, authorization checks,
// causal-hold release (§5.3) — so that "we limit the power entrusted to
// servers which is useful when they exhibit malicious behavior" (§3).
//
// Fault injection: the protected virtuals `accept_request` and
// `filter_response` let the faults library wrap every interaction of a
// compromised server (mute, stale, corrupt, equivocate) without the honest
// logic knowing.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "core/admission.h"
#include "core/auth.h"
#include "core/config.h"
#include "core/messages.h"
#include "crypto/keys.h"
#include "gossip/gossip.h"
#include "net/rpc.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "shard/hash_ring.h"
#include "storage/audit_log.h"
#include "storage/context_store.h"
#include "storage/engine.h"
#include "storage/hold_queue.h"
#include "storage/wal/wal.h"

namespace securestore::core {

class SecureStoreServer {
 public:
  /// Write-ahead logging knobs. Every accepted write/context/hold-release
  /// is appended (and made durable per `fsync`) before the ack, so a crash
  /// between snapshots loses nothing an honest client was told succeeded.
  struct DurabilityOptions {
    /// Directory for WAL segments (created if missing).
    std::string wal_dir;
    /// Directory for the LSM engine's SSTables + manifest (DESIGN.md §12).
    /// Empty = `wal_dir + ".lsm"`. Ignored by the in-memory engine.
    std::string data_dir;
    storage::FsyncPolicy fsync = storage::FsyncPolicy::kAlways;
    /// Group-commit cadence under FsyncPolicy::kInterval: writes are acked
    /// immediately but become durable at the next flush tick, bounding the
    /// loss window by this interval.
    SimDuration flush_interval = milliseconds(5);
    std::size_t wal_segment_bytes = 1u << 20;
  };

  struct Options {
    gossip::GossipEngine::Config gossip;
    bool start_gossip = true;
    /// When set, read/write requests must carry a valid token signed by
    /// this authority key (§4's authorization assumption).
    std::optional<Bytes> authority_key;
    /// Durable operation: load state from this snapshot file at startup
    /// (if it exists) and re-save it every `snapshot_period` of transport
    /// time. Long-term safe keeping across restarts (§1). A corrupt or
    /// truncated snapshot is quarantined (renamed to `*.corrupt`), not
    /// fatal: the server starts fresh and recovers from the WAL.
    std::optional<std::string> snapshot_path;
    SimDuration snapshot_period = seconds(30);
    /// Write-ahead logging; recovery replays snapshot + WAL tail through
    /// the normal apply paths.
    std::optional<DurabilityOptions> durability;
    /// Policies registered before WAL replay, so recovered multi-writer CC
    /// records honor the same causal-hold rules they saw live.
    std::vector<GroupPolicy> group_policies;
    /// Sharded deployments (DESIGN.md §11): this server's shard id plus the
    /// boot ring. With a ring installed the server enforces ownership —
    /// group-scoped requests the ring maps to another shard are rejected
    /// with kWrongShard (the response body is the signed ring, so a stale
    /// client can refresh) — and gossip disseminates/installs newer rings
    /// signed by StoreConfig::ring_authority_key. Unset ring = unsharded;
    /// every group is served.
    std::uint32_t shard_id = 0;
    std::optional<shard::SignedRingState> ring;
    /// Appended verbatim to every metric name (e.g. "{shard=2}") so several
    /// replica groups sharing one registry stay distinguishable.
    std::string metric_suffix;
    /// Overload admission control (DESIGN.md §13): shed new client requests
    /// with kOverloaded when live pressure signals cross their watermarks.
    /// Quorum-critical traffic (gossip, stability) is never shed.
    AdmissionController::Options admission;
    /// Introspection endpoint (PROTOCOL.md §13): answers kIntrospect with
    /// the server's status sample, metrics exposition, or a recent-events
    /// dump. Unauthenticated by design (health must be askable when key
    /// distribution broke), so a token bucket on the transport clock caps
    /// what the concession costs; past the limit the server stays silent
    /// (a limited scraper sees a timeout, never a forged answer).
    struct IntrospectOptions {
      bool enabled = true;
      double rate_per_sec = 100;
      double burst = 50;
    };
    IntrospectOptions introspect;
  };

  SecureStoreServer(net::Transport& transport, NodeId id, StoreConfig config,
                    crypto::KeyPair keys, Options options, Rng rng);
  virtual ~SecureStoreServer();

  SecureStoreServer(const SecureStoreServer&) = delete;
  SecureStoreServer& operator=(const SecureStoreServer&) = delete;

  NodeId id() const { return node_.id(); }
  const StoreConfig& config() const { return config_; }

  /// Registers how a group's items behave; unknown groups default to
  /// single-writer MRC with honest clients.
  void set_group_policy(const GroupPolicy& policy);
  const GroupPolicy& group_policy(GroupId group) const;

  // Introspection for tests and benches. The concrete type depends on
  // StoreConfig::engine (DESIGN.md §12).
  storage::StorageEngine& store() { return *items_; }
  const storage::StorageEngine& store() const { return *items_; }
  std::size_t held_writes() const { return holds_.size(); }
  gossip::GossipEngine& gossip() { return *gossip_; }

  /// Durable state (records + contexts + audit chain + the WAL position it
  /// covers) as a checksummed snapshot blob.
  Bytes snapshot() const;
  /// Replays a snapshot into this (freshly constructed) server. Throws
  /// DecodeError on a malformed or tampered snapshot.
  void restore(BytesView snapshot_blob);
  /// Writes the snapshot to Options::snapshot_path now (no-op without one),
  /// then drops WAL segments the snapshot fully covers.
  void save_snapshot_now();

  /// WAL counters — nullptr when durability is off.
  const storage::WalStats* wal_stats() const {
    return wal_ != nullptr ? &wal_->stats() : nullptr;
  }
  /// The write-ahead log itself (tests/benches); nullptr when durability
  /// is off.
  storage::WriteAheadLog* wal() { return wal_.get(); }

  /// The tamper-evident log of every write this server accepted ([6]-style
  /// auditing; also served over the wire via kAuditRead).
  const storage::AuditLog& audit_log() const { return audit_; }

  /// Overload admission control (DESIGN.md §13); tests and benches inspect
  /// the latched state and shed counts here.
  const AdmissionController& admission() const { return admission_; }

  /// Stored client contexts (rebalance export, tests).
  const storage::ContextStore& contexts() const { return contexts_; }

  /// The status sample the introspection endpoint serves (PROTOCOL.md
  /// §13): this server's raw health signals at the current transport
  /// time. Also directly callable by in-process monitors and tests.
  obs::ServerSample introspect_status() const;

  // Sharding (DESIGN.md §11).
  /// The installed ring's version; 0 when unsharded.
  std::uint64_t ring_version() const { return ring_.has_value() ? ring_->ring.version : 0; }
  /// Installs a candidate ring: accepted only when strictly newer than the
  /// installed one (or none is installed), authority-signed, and
  /// structurally usable. The rebalance switch-over calls this directly;
  /// gossip arrivals funnel here too.
  bool install_ring(const shard::SignedRingState& candidate);
  /// Whether this server's shard owns `group` under the installed ring.
  /// Always true when unsharded.
  bool owns_group(GroupId group) const;

  // Rebalance handoff imports (DESIGN.md §11): full validation — records
  // pass the same signature/structure/digest checks as client writes,
  // contexts must carry a valid owner signature — but NO ownership gate, so
  // a destination shard can be seeded with groups the still-installed old
  // ring maps elsewhere. Returns false when validation rejects the input.
  bool import_record(const WriteRecord& record);
  bool import_context(const StoredContext& stored);

 protected:
  /// Fault hook: return false to silently ignore a request.
  virtual bool accept_request(NodeId from, net::MsgType type);

  /// Fault hook: runs before the honest handler. Return a value to replace
  /// honest processing entirely (the inner optional is the response to
  /// send, nullopt inner = stay silent). Return nullopt (outer) to proceed
  /// honestly. Lets a fault e.g. acknowledge a write it never stores.
  virtual std::optional<std::optional<std::pair<net::MsgType, Bytes>>> preempt_request(
      NodeId from, net::MsgType type, BytesView body);

  /// Fault hook: the honest response is offered before sending; a faulty
  /// subclass may mutate or suppress it (request body included so the fault
  /// can key its behavior on the item being asked about). Default passes
  /// through.
  virtual std::optional<std::pair<net::MsgType, Bytes>> filter_response(
      NodeId from, net::MsgType request_type, BytesView request_body,
      std::optional<std::pair<net::MsgType, Bytes>> honest);

  const StoreConfig& config_ref() const { return config_; }

 private:
  std::optional<std::pair<net::MsgType, Bytes>> handle_request(NodeId from, net::MsgType type,
                                                               BytesView body,
                                                               const obs::TraceContext& trace);
  /// The batched hot path (DESIGN.md §10): everything the transport had
  /// pending at one dispatch wakeup. Client-write signatures across the
  /// batch are checked as ONE Ed25519 batch verification; each request then
  /// flows through handle_request so fault hooks and per-type counters
  /// behave identically to the scalar path.
  std::vector<std::optional<std::pair<net::MsgType, Bytes>>> handle_request_batch(
      std::vector<net::IncomingRequest>& batch);
  void handle_oneway(NodeId from, net::MsgType type, BytesView body);

  Bytes handle_context_read(const ContextReadReq& req);
  Bytes handle_context_write(const ContextWriteReq& req);
  Bytes handle_meta(const MetaReq& req);
  Bytes handle_read(const ReadReq& req);
  Bytes handle_write(const WriteReq& req);
  Bytes handle_log_read(const LogReadReq& req);
  Bytes handle_reconstruct(const ReconstructReq& req);
  void handle_stability(const StabilityMsg& msg);

  /// Validates a record end to end (writer key known, signature, digest,
  /// policy conformance). Used for client writes and gossip alike.
  bool validate_record(const WriteRecord& record) const;

  /// The crypto-free half of validate_record: policy conformance and
  /// timestamp shape. The batch paths run this per record, then settle all
  /// signatures at once.
  bool validate_record_structure(const WriteRecord& record) const;

  /// Batch gossip apply: per-record structure/digest checks, one Ed25519
  /// batch verification across every candidate, then apply_with_holds for
  /// the survivors. Returns accepted flags, index-aligned.
  std::vector<bool> apply_gossip_batch(
      const std::vector<std::pair<WriteRecord, obs::TraceContext>>& records, NodeId from);

  /// Applies a validated record, honoring §5.3 causal holds, then releases
  /// any transitively unblocked held writes. Returns true if the record
  /// became visible (false: parked in the hold queue).
  bool apply_with_holds(const WriteRecord& record);

  bool authorized(const std::optional<AuthToken>& token, ClientId client, GroupId group,
                  Rights needed) const;

  /// Admission gate (DESIGN.md §13): samples live pressure and, when the
  /// controller says shed AND `type` is a client data request, returns the
  /// kOverloaded refusal to send (signed retry-after hint). nullopt =
  /// admitted. Never sheds quorum-critical traffic.
  std::optional<std::pair<net::MsgType, Bytes>> maybe_shed(net::MsgType type);
  /// The kOverloaded response body for the controller's current hint,
  /// memoized per distinct (quantized) retry-after value so shedding costs
  /// no Ed25519 signing on the hot path.
  const Bytes& overloaded_body(std::uint32_t retry_after_us);

  /// kIntrospect handler (PROTOCOL.md §13): token-bucket admission, then
  /// renders the requested format. nullopt = rate-limited or disabled
  /// (silent; the scraper sees a timeout).
  std::optional<std::pair<net::MsgType, Bytes>> handle_introspect(BytesView body);

  /// Gossip ring arrivals: decode + install_ring (malformed counts as
  /// rejected).
  void install_ring_bytes(NodeId from, BytesView body);
  /// The group a request is keyed by, for the ownership check; nullopt for
  /// requests that are not group-scoped (audit reads) or malformed bodies
  /// (the dispatch path drops those identically either way).
  static std::optional<GroupId> request_group(net::MsgType type, BytesView body);

  const Bytes* client_key(ClientId client) const;

  /// Builds the configured storage engine (DESIGN.md §12). Throws
  /// std::invalid_argument when kLsm is requested without durability.
  std::unique_ptr<storage::StorageEngine> make_engine();

  /// Boot-time durability: load (or quarantine) the snapshot file, open
  /// the WAL and replay its tail through the apply paths.
  void boot_from_disk();
  void replay_wal_entry(storage::WalEntryType type, BytesView payload);
  /// Appends to the WAL unless durability is off or we are replaying.
  /// Returns the entry's LSN (0 when skipped) and advances the engine's
  /// WAL watermark — clamped below `hold_lsn_floor_` while writes are
  /// parked in the hold queue, since those are WAL-only until released.
  std::uint64_t wal_append(storage::WalEntryType type, BytesView payload);
  std::uint64_t wal_append_record(storage::WalEntryType type, const WriteRecord& record);

  /// The WAL position the next snapshot blob may claim as covered: the last
  /// appended LSN, clamped by the hold floor so a crash replays held-but-
  /// unreleased writes (they live only in the WAL).
  std::uint64_t covered_lsn_target() const;

  /// Advances the engine's WAL watermark to `lsn`, clamped by the hold
  /// floor. The engine stamps this into its next flushed SST/manifest, so
  /// the clamp is what keeps held writes replayable after a crash.
  void note_engine_watermark(std::uint64_t lsn);

  net::RpcNode node_;
  StoreConfig config_;
  crypto::KeyPair keys_;
  Options options_;
  /// Distributed-trace hooks (DESIGN.md §8): the deployment's event log and
  /// the sanitized context of the request currently being handled. Dispatch
  /// is single-threaded, so a plain member carries the context from the rpc
  /// layer to spans emitted deep inside the apply/WAL paths.
  obs::EventLog& events_;
  obs::TraceContext active_trace_{};
  /// Batch pre-verification verdict for the kWrite currently dispatching
  /// through handle_request: set (to the record's full validity) by
  /// handle_request_batch, consulted by handle_write instead of a scalar
  /// validate_record. Unset on the per-message path.
  std::optional<bool> prevalidated_write_;
  std::unique_ptr<storage::StorageEngine> items_;
  storage::ContextStore contexts_;
  storage::HoldQueue holds_;
  storage::AuditLog audit_;
  std::unordered_map<GroupId, GroupPolicy> policies_;
  GroupPolicy default_policy_;
  std::optional<TokenVerifier> token_verifier_;
  /// Installed ring state: the signed original (re-served to stale clients
  /// and gossip peers, pre-serialized in ring_bytes_) plus the lookup
  /// structure. All three change together in install_ring.
  std::optional<shard::SignedRingState> ring_;
  Bytes ring_bytes_;
  std::optional<shard::HashRing> hash_ring_;
  std::unique_ptr<gossip::GossipEngine> gossip_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  /// WAL position covered by the last snapshot restored or saved; replay
  /// starts after it.
  std::uint64_t wal_covered_lsn_ = 0;
  /// Set while the hold queue is non-empty: one less than the LSN of the
  /// first record parked since the queue was last empty. Held writes exist
  /// only in the WAL, so neither snapshots nor the LSM manifest may claim
  /// coverage at or past their entries.
  std::optional<std::uint64_t> hold_lsn_floor_;
  /// Admission control state (DESIGN.md §13) plus the signed-refusal cache
  /// keyed by quantized retry-after value.
  AdmissionController admission_;
  std::unordered_map<std::uint32_t, Bytes> overload_bodies_;
  /// Introspection state (PROTOCOL.md §13). The local WAL-append histogram
  /// duplicates `wal_append_us_` observations because the registry metric
  /// is deployment-wide (all servers share the suffix-qualified name) —
  /// per-server p99 needs per-server buckets. Request/shed counts are
  /// local for the same reason: the watchdog differences *this* server's
  /// counters, not the deployment aggregate.
  SimTime boot_at_ = 0;
  obs::Histogram local_wal_append_us_;
  std::uint64_t requests_dispatched_ = 0;
  std::uint64_t requests_shed_ = 0;
  double introspect_tokens_ = 0;
  SimTime introspect_refill_at_ = 0;
  bool wal_replaying_ = false;
  /// LSN of the WAL entry currently being replayed (boot only); lets the
  /// hold floor anchor correctly when replay re-parks a held write.
  std::uint64_t replay_lsn_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);  // guards timers

  // Metrics (handles into the transport's registry, resolved once).
  // Request-mix counters, keyed by MsgType; unknown types fall back to
  // req_other_. Built in the constructor, read-only afterwards.
  std::unordered_map<std::uint16_t, obs::Counter*> req_counters_;
  obs::Counter& req_other_;
  obs::Counter& equivocations_;
  obs::Gauge& hold_depth_;  // per-server: depth does not aggregate across ids
  obs::Histogram& apply_us_;
  obs::Histogram& wal_append_us_;
  obs::Histogram& wal_sync_us_;
  /// Requests per dispatch wakeup — how much batching the hot path gets.
  obs::Histogram& batch_size_;
  /// Requests refused by admission control (DESIGN.md §13).
  obs::Counter& shed_;
  /// Introspect requests silently dropped by the rate limit (§13).
  obs::Counter& introspect_limited_;
  // Sharding counters (DESIGN.md §8 catalog, shard.* family).
  obs::Counter& wrong_shard_;     // misrouted requests rejected
  obs::Counter& ring_installed_;  // ring updates accepted
  obs::Counter& ring_rejected_;   // ring updates refused (signature/shape)
};

}  // namespace securestore::core
