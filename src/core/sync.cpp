#include "core/sync.h"

namespace securestore::core {

VoidResult SyncClient::connect(GroupId group) {
  std::optional<VoidResult> slot;
  client_.connect(group, [&slot](VoidResult r) { slot = std::move(r); });
  return wait(slot);
}

VoidResult SyncClient::disconnect() {
  std::optional<VoidResult> slot;
  client_.disconnect([&slot](VoidResult r) { slot = std::move(r); });
  return wait(slot);
}

VoidResult SyncClient::reconstruct_context(GroupId group) {
  std::optional<VoidResult> slot;
  client_.reconstruct_context(group, [&slot](VoidResult r) { slot = std::move(r); });
  return wait(slot);
}

VoidResult SyncClient::write(ItemId item, BytesView value) {
  std::optional<VoidResult> slot;
  client_.write(item, value, [&slot](VoidResult r) { slot = std::move(r); });
  return wait(slot);
}

Result<ReadOutput> SyncClient::read(ItemId item) {
  std::optional<Result<ReadOutput>> slot;
  client_.read(item, [&slot](Result<ReadOutput> r) { slot = std::move(r); });
  return wait(slot);
}

Result<std::vector<GroupEntry>> SyncClient::list_group(GroupId group) {
  std::optional<Result<std::vector<GroupEntry>>> slot;
  client_.list_group(group,
                     [&slot](Result<std::vector<GroupEntry>> r) { slot = std::move(r); });
  return wait(slot);
}

Result<Bytes> SyncClient::read_value(ItemId item) {
  Result<ReadOutput> result = read(item);
  if (!result.ok()) return Result<Bytes>(result.error(), result.detail());
  return Result<Bytes>(std::move(result->value));
}

}  // namespace securestore::core
