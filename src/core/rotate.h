// Key rotation (§5.2): "When the owner changes its key, it reads the data
// items, re-encrypts and stores them back."
//
// `rotate_keys` runs that cycle over a set of items: each is read and
// authenticated under the current codec, the client switches to the new
// codec, and the plaintext is written back (as a fresh, newer-timestamped
// record, so dissemination replaces the old ciphertext everywhere).
//
// On any failure the client's codec is restored and the error returned;
// items already rotated remain readable under the NEW codec — the caller
// retries the remainder (rotation is idempotent per item).
//
// The paper's caveat applies and is not solvable client-side: "malicious
// servers might still retain the old data, encrypted with the old key. If
// the old key is compromised, confidentiality [of old values] is lost."
#pragma once

#include <memory>
#include <span>

#include "core/sync.h"

namespace securestore::core {

VoidResult rotate_keys(SyncClient& store, std::span<const ItemId> items,
                       std::shared_ptr<ValueCodec> new_codec);

}  // namespace securestore::core
