// Signed write records and signed contexts — what servers store.
//
// Per Fig. 2, a write message carries {uid(x_j), ts or X_i, v} plus the
// writer's signature over exactly those fields. Following §6 ("each write
// requires the signing of the digest of the value and the meta data"), the
// signature here covers the *digest* of the value rather than the value
// itself, so a record's meta-data alone is verifiable — servers exchange
// and validate meta-data during gossip and the meta phase of a read without
// shipping values.
//
// Servers are passive: they never produce these, only verify and store
// them, which is the paper's §5.2 correctness argument in code — "no
// malicious server can modify any data item since all data items are
// signed".
#pragma once

#include <optional>

#include "core/context.h"
#include "core/timestamp.h"
#include "core/types.h"
#include "util/bytes.h"
#include "util/ids.h"

namespace securestore::core {

/// Record flags (bit set, signed with the record).
enum RecordFlags : std::uint8_t {
  kNoFlags = 0,
  /// Fragmentation-scattering (§3, [14][18]): this record is one fragment
  /// of a value dispersed across servers. Scattered records are excluded
  /// from gossip — dissemination would concentrate every fragment (and key
  /// share) on every server, collapsing the secret-sharing threshold.
  kScattered = 1 << 0,
};

struct WriteRecord {
  ItemId item{};
  GroupId group{};
  ConsistencyModel model = ConsistencyModel::kMRC;
  std::uint8_t flags = kNoFlags;
  ClientId writer{};
  Timestamp ts;
  /// X_writer at write time; meaningful (non-empty) only for CC.
  Context writer_context;
  Bytes value;
  /// d(v): bound into the signature; for multi-writer data also appears
  /// inside `ts.digest`.
  Bytes value_digest;
  /// Writer's signature over `signed_payload()`.
  Bytes signature;

  /// The canonical bytes the signature covers: item, group, model, writer,
  /// ts, writer context, d(v). Everything a server relays and everything a
  /// reader's consistency decision depends on — but not the value, which is
  /// checked against d(v).
  Bytes signed_payload() const;

  /// Computes d(v), fills `value_digest`, signs. For multi-writer records
  /// the caller must have set ts.digest = d(v) first (checked).
  void sign(BytesView writer_seed);

  /// Full verification: signature over the meta-data AND value matches d(v).
  bool verify(BytesView writer_public_key) const;

  /// Meta-only verification (no value available): signature over meta-data.
  bool verify_meta(BytesView writer_public_key) const;

  /// The record without its value — what meta queries and reconstruction
  /// responses carry.
  WriteRecord meta_only() const;

  void encode(Writer& w) const;
  static WriteRecord decode(Reader& r);
  Bytes serialize() const;
  static WriteRecord deserialize(BytesView data);

  bool operator==(const WriteRecord& other) const = default;
};

/// A client's context as stored in the secure store (Fig. 1): the context
/// plus the owner's signature over its canonical serialization.
struct StoredContext {
  ClientId owner{};
  Context context;
  Bytes signature;

  Bytes signed_payload() const;
  void sign(BytesView owner_seed);
  bool verify(BytesView owner_public_key) const;

  void encode(Writer& w) const;
  static StoredContext decode(Reader& r);

  bool operator==(const StoredContext& other) const = default;
};

}  // namespace securestore::core
