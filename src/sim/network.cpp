#include "sim/network.h"

namespace securestore::sim {

namespace {

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
}

}  // namespace

LinkProfile lan_profile() {
  return LinkProfile{microseconds(200), microseconds(100), 0.0};
}

LinkProfile wan_profile() {
  return LinkProfile{milliseconds(60), milliseconds(40), 0.0};
}

LinkProfile zero_profile() {
  return LinkProfile{0, 0, 0.0};
}

void NetworkModel::set_link_profile(NodeId from, NodeId to, LinkProfile profile) {
  link_overrides_[link_key(from, to)] = profile;
}

void NetworkModel::set_partitioned(NodeId node, bool partitioned) {
  if (partitioned) {
    partitioned_.insert(node);
  } else {
    partitioned_.erase(node);
  }
}

bool NetworkModel::is_partitioned(NodeId node) const {
  return partitioned_.contains(node);
}

void NetworkModel::partition_link(NodeId from, NodeId to) {
  partitioned_links_.insert(link_key(from, to));
}

void NetworkModel::heal_link(NodeId from, NodeId to) {
  partitioned_links_.erase(link_key(from, to));
}

bool NetworkModel::link_partitioned(NodeId from, NodeId to) const {
  return partitioned_links_.contains(link_key(from, to));
}

void NetworkModel::partition_groups(const std::vector<NodeId>& a,
                                    const std::vector<NodeId>& b) {
  for (const NodeId left : a) {
    for (const NodeId right : b) {
      partition_link(left, right);
      partition_link(right, left);
    }
  }
}

void NetworkModel::heal_groups(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  for (const NodeId left : a) {
    for (const NodeId right : b) {
      heal_link(left, right);
      heal_link(right, left);
    }
  }
}

void NetworkModel::heal_all_links() { partitioned_links_.clear(); }

const LinkProfile& NetworkModel::profile_for(NodeId from, NodeId to) const {
  const auto it = link_overrides_.find(link_key(from, to));
  return it != link_overrides_.end() ? it->second : default_profile_;
}

std::optional<SimDuration> NetworkModel::sample_delivery(NodeId from, NodeId to) {
  if (partitioned_.contains(from) || partitioned_.contains(to)) return std::nullopt;
  if (partitioned_links_.contains(link_key(from, to))) return std::nullopt;
  const LinkProfile& profile = profile_for(from, to);
  if (profile.loss_probability > 0.0 && rng_.next_bool(profile.loss_probability)) {
    return std::nullopt;
  }
  SimDuration latency = profile.base_latency;
  if (profile.jitter > 0) latency += rng_.next_below(profile.jitter + 1);
  return latency;
}

}  // namespace securestore::sim
