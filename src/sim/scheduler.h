// Discrete-event scheduler.
//
// The protocol evaluation runs on simulated time: events (message
// deliveries, protocol timeouts, gossip ticks) are executed in timestamp
// order while a virtual clock advances. Runs are deterministic given the
// same seed, which the tests exploit heavily.
//
// Ties are broken by insertion order (FIFO among same-time events), so the
// execution order is stable across platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace securestore::sim {

class Scheduler {
 public:
  using Event = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `event` to run at absolute time `at` (>= now).
  void schedule_at(SimTime at, Event event);

  /// Schedules `event` to run `delay` after the current time.
  void schedule_in(SimDuration delay, Event event);

  /// Runs a single event; returns false if the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run_until_idle();

  /// Runs events with time <= `deadline`; the clock ends at `deadline` even
  /// if the queue empties earlier.
  void run_until(SimTime deadline);

  std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed (sanity metric for runaway simulations).
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t sequence;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace securestore::sim
