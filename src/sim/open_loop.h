// Open-loop load generation (DESIGN.md §13, EXPERIMENTS.md E18).
//
// Closed-loop load (a fixed worker pool that issues the next op when the
// previous one finishes) self-throttles: when the system slows down, so
// does the offered load, which hides overload collapse. Real populations —
// millions of independent clients — do not coordinate like that: arrivals
// keep coming at their rate no matter how the system is doing. That is the
// open-loop model, and it is the load shape admission control exists for.
//
// `OpenLoopLoad` draws Poisson arrivals (exponential inter-arrival gaps,
// seeded, deterministic) at a configured rate and hands each arrival to an
// issue callback. The million-client population is simulated through a
// bounded stand-in pool: up to `max_in_flight` operations ride concurrently
// (each representing one independent client's op); arrivals past the cap
// are counted as `overflow` — offered load that found the system (or the
// harness) saturated — and charged against goodput, never silently dropped.
//
// The class is deliberately protocol-agnostic (it lives in sim, below
// core): callers wire `issue` to whatever operation mix they want, and the
// chaos harness / bench layer owns success bookkeeping via `done(ok)`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/time.h"

namespace securestore::sim {

class OpenLoopLoad {
 public:
  struct Options {
    /// Poisson arrival rate λ, in operations per simulated second.
    double arrivals_per_sec = 1000.0;
    /// Stand-in client pool bound: arrivals beyond this many in-flight ops
    /// count as overflow instead of issuing.
    std::size_t max_in_flight = 256;
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::uint64_t arrivals = 0;   // Poisson arrivals drawn
    std::uint64_t issued = 0;     // arrivals handed to the issue callback
    std::uint64_t overflow = 0;   // arrivals dropped at the in-flight cap
    std::uint64_t completed = 0;  // done() callbacks seen
    std::uint64_t succeeded = 0;  // done(true) — goodput numerator
  };

  /// `issue(done)`: start one operation now; call `done(ok)` exactly once
  /// when it finishes (ok = the operation succeeded end-to-end).
  using DoneFn = std::function<void(bool ok)>;
  using IssueFn = std::function<void(DoneFn done)>;

  OpenLoopLoad(Scheduler& scheduler, Options options, IssueFn issue);
  ~OpenLoopLoad();

  OpenLoopLoad(const OpenLoopLoad&) = delete;
  OpenLoopLoad& operator=(const OpenLoopLoad&) = delete;

  /// Schedules arrivals from now until `until` (absolute scheduler time).
  /// Arrivals stop at the horizon; in-flight ops may complete after it.
  void start(SimTime until);
  /// Stops generating further arrivals (in-flight ops still complete).
  void stop();

  const Stats& stats() const { return stats_; }
  std::size_t in_flight() const { return in_flight_; }
  const Options& options() const { return options_; }

 private:
  void schedule_next();
  void arrive();

  Scheduler& scheduler_;
  Options options_;
  IssueFn issue_;
  Rng rng_;
  Stats stats_;
  std::size_t in_flight_ = 0;
  SimTime until_ = 0;
  bool running_ = false;
  /// Keeps scheduled arrival callbacks and outstanding done() lambdas from
  /// touching a destroyed generator.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace securestore::sim
