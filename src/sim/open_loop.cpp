#include "sim/open_loop.h"

#include <algorithm>

namespace securestore::sim {

OpenLoopLoad::OpenLoopLoad(Scheduler& scheduler, Options options, IssueFn issue)
    : scheduler_(scheduler),
      options_(options),
      issue_(std::move(issue)),
      rng_(options.seed) {}

OpenLoopLoad::~OpenLoopLoad() { *alive_ = false; }

void OpenLoopLoad::start(SimTime until) {
  until_ = until;
  running_ = true;
  schedule_next();
}

void OpenLoopLoad::stop() { running_ = false; }

void OpenLoopLoad::schedule_next() {
  if (!running_ || options_.arrivals_per_sec <= 0) return;
  // Exponential inter-arrival gap with mean 1/λ — the Poisson process. At
  // least 1µs so the event loop always advances.
  const double mean_us = 1e6 / options_.arrivals_per_sec;
  const auto gap = std::max<SimDuration>(
      1, static_cast<SimDuration>(rng_.next_exponential(mean_us)));
  if (scheduler_.now() + gap > until_) {
    running_ = false;
    return;
  }
  scheduler_.schedule_in(gap, [this, alive = alive_] {
    if (!*alive) return;
    arrive();
  });
}

void OpenLoopLoad::arrive() {
  if (!running_) return;
  ++stats_.arrivals;
  if (in_flight_ >= options_.max_in_flight) {
    // Open-loop discipline: the arrival happened whether or not anyone was
    // free to serve it. Counting it (instead of deferring it) is what keeps
    // offered load independent of system speed.
    ++stats_.overflow;
  } else {
    ++stats_.issued;
    ++in_flight_;
    issue_([this, alive = alive_](bool ok) {
      if (!*alive) return;
      --in_flight_;
      ++stats_.completed;
      if (ok) ++stats_.succeeded;
    });
  }
  schedule_next();
}

}  // namespace securestore::sim
