#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace securestore::sim {

namespace {

void require_nonempty(const std::vector<double>& v) {
  if (v.empty()) throw std::logic_error("Samples: no observations");
}

}  // namespace

double Samples::mean() const {
  require_nonempty(values_);
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::min() const {
  require_nonempty(values_);
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  require_nonempty(values_);
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double p) const {
  require_nonempty(values_);
  if (p < 0 || p > 100) throw std::invalid_argument("Samples::percentile: p out of range");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double fraction = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - fraction) + sorted[hi] * fraction;
}

double Samples::stddev() const {
  require_nonempty(values_);
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

}  // namespace securestore::sim
