// Simulated network model.
//
// Samples per-message latency and loss. The defaults model the paper's
// target environment — clients and replicated servers spread across a wide
// area — but benches reconfigure it per experiment (LAN vs WAN, §6's
// "environment where communication latencies are high across the server
// replicas").
//
// Latency = base + uniform jitter in [0, jitter], per directed link, with
// optional per-link overrides. Loss and partitions silently drop messages;
// protocol timeouts are how callers observe that (as in a real network).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "util/ids.h"
#include "util/rng.h"
#include "util/time.h"

namespace securestore::sim {

struct LinkProfile {
  SimDuration base_latency = milliseconds(1);
  SimDuration jitter = microseconds(200);
  double loss_probability = 0.0;
};

/// Commonly used profiles for the benches.
LinkProfile lan_profile();   // ~0.2 ms
LinkProfile wan_profile();   // ~60 ms +/- 20 ms, the paper's wide-area setting
LinkProfile zero_profile();  // instantaneous, for logic-only tests

class NetworkModel {
 public:
  explicit NetworkModel(Rng rng, LinkProfile default_profile = LinkProfile{})
      : rng_(std::move(rng)), default_profile_(default_profile) {}

  void set_default_profile(LinkProfile profile) { default_profile_ = profile; }

  /// Overrides the profile of a directed link.
  void set_link_profile(NodeId from, NodeId to, LinkProfile profile);

  /// Puts a node into (or out of) the partitioned set: messages to and from
  /// partitioned nodes are dropped.
  void set_partitioned(NodeId node, bool partitioned);
  bool is_partitioned(NodeId node) const;

  /// Directed pairwise partition: drops messages flowing `from` -> `to`
  /// only. Asymmetric splits (A hears B, B never hears A) compose from
  /// single directions; call both directions for a symmetric cut.
  void partition_link(NodeId from, NodeId to);
  void heal_link(NodeId from, NodeId to);
  bool link_partitioned(NodeId from, NodeId to) const;

  /// Group partition: severs every directed link between the two sets (both
  /// directions). `heal_groups` undoes exactly those links.
  void partition_groups(const std::vector<NodeId>& a, const std::vector<NodeId>& b);
  void heal_groups(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

  /// Drops every pairwise link partition (node-global partitions stay).
  void heal_all_links();

  /// Returns the delivery latency for one message, or nullopt if the
  /// message is lost (loss, partition).
  std::optional<SimDuration> sample_delivery(NodeId from, NodeId to);

 private:
  const LinkProfile& profile_for(NodeId from, NodeId to) const;

  Rng rng_;
  LinkProfile default_profile_;
  std::unordered_map<std::uint64_t, LinkProfile> link_overrides_;
  std::unordered_set<NodeId> partitioned_;
  std::unordered_set<std::uint64_t> partitioned_links_;  // directed from->to keys
};

}  // namespace securestore::sim
