// Measurement helpers for the benchmark harness.
//
// `Samples` accumulates scalar observations (operation latencies, message
// counts per op) and reports the summary statistics the experiment tables
// print: mean, percentiles, min/max.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace securestore::sim {

class Samples {
 public:
  void add(double value) { values_.push_back(value); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Percentile in [0, 100], by nearest-rank on the sorted samples.
  double percentile(double p) const;
  double median() const { return percentile(50); }
  double stddev() const;

  void clear() { values_.clear(); }

 private:
  std::vector<double> values_;
};

/// Cumulative message-level counters, kept by the transport.
struct MessageStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;

  void reset() { *this = MessageStats{}; }
};

}  // namespace securestore::sim
