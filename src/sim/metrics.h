// Measurement helpers for the benchmark harness.
//
// `Samples` accumulates scalar observations (operation latencies, message
// counts per op) and reports the summary statistics the experiment tables
// print: mean, percentiles, min/max.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace securestore::sim {

class Samples {
 public:
  void add(double value) { values_.push_back(value); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Percentile in [0, 100], by nearest-rank on the sorted samples.
  double percentile(double p) const;
  double median() const { return percentile(50); }
  double stddev() const;

  void clear() { values_.clear(); }

 private:
  std::vector<double> values_;
};

/// Cumulative transport-level counters, kept by every transport. The
/// message counters apply to all transports; the connection counters are
/// only meaningful for connection-oriented transports (TcpTransport) and
/// stay zero elsewhere.
struct TransportStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  /// Outbound connections re-established after a previous connection to the
  /// same endpoint was lost.
  std::uint64_t reconnects = 0;
  /// Failed connect() attempts (initial or during reconnect backoff).
  std::uint64_t connect_failures = 0;
  /// Messages dropped because a per-connection send queue was full.
  std::uint64_t send_queue_drops = 0;
  /// Highest depth (in frames) any send queue ever reached.
  std::uint64_t send_queue_highwater = 0;
  /// Messages dropped because a receiving node's delivery ring was full
  /// (thread/TCP transports; the consumer is not keeping up).
  std::uint64_t ring_full_drops = 0;
  /// Highest delivery-ring occupancy (in messages) any endpoint reached
  /// since the last metrics snapshot — the transports reset it per snapshot
  /// so `Cluster::start_metrics_snapshots` timelines show pressure ramps,
  /// not one all-time peak.
  std::uint64_t ring_occupancy_highwater = 0;

  void reset() { *this = TransportStats{}; }
};

/// Historical name; the struct outgrew message counting.
using MessageStats = TransportStats;

}  // namespace securestore::sim
