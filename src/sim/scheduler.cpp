#include "sim/scheduler.h"

#include <stdexcept>

namespace securestore::sim {

void Scheduler::schedule_at(SimTime at, Event event) {
  if (at < now_) throw std::invalid_argument("Scheduler: event scheduled in the past");
  queue_.push(Entry{at, next_sequence_++, std::move(event)});
}

void Scheduler::schedule_in(SimDuration delay, Event event) {
  schedule_at(now_ + delay, std::move(event));
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the event may schedule more events.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.at;
  ++executed_;
  entry.event();
  return true;
}

void Scheduler::run_until_idle() {
  while (step()) {
  }
}

void Scheduler::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace securestore::sim
