// Grid-based Byzantine masking quorums (§6: "although improved quorum
// design can reduce their sizes [Malkhi-Reiter STOC'97], a minimum quorum
// size of sqrt(n) is necessary").
//
// Servers are arranged in a k x k grid (n = k^2). A quorum is the union of
// r full rows and r full columns with r = ceil(sqrt(2b+1)): for any two
// quorums, the r rows of the first cross the r columns of the second in
// r^2 >= 2b+1 distinct servers, so every pair of quorums masks b liars —
// the same guarantee as the majority masking quorum at size
// O(sqrt(b*n)) instead of O(n).
//
// (This is a slightly conservative variant of the original M-Grid, trading
// ~sqrt(2)x size for a one-line intersection proof; the property test
// verifies the 2b+1 intersection exhaustively for small grids and by
// sampling for large ones.)
//
// The construction slots into E1's quorum-size comparison to reproduce the
// §6 sentence quantitatively; wiring a full grid-quorum *store* is not
// needed for that claim (the message/crypto costs scale with quorum size,
// which is what this type computes).
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"

namespace securestore::baselines {

class MGrid {
 public:
  /// Throws std::invalid_argument unless n is a perfect square and b is
  /// small enough for the grid (r <= k).
  MGrid(std::uint32_t n, std::uint32_t b);

  static bool valid_parameters(std::uint32_t n, std::uint32_t b);

  std::uint32_t side() const { return side_; }
  std::uint32_t rows_and_cols_per_quorum() const { return r_; }

  /// Exact size of every quorum this construction produces.
  std::size_t quorum_size() const;

  /// A uniformly random quorum (r rows + r columns). Servers are numbered
  /// row-major: NodeId{row * side + col}.
  std::vector<NodeId> random_quorum(Rng& rng) const;

  /// The specific quorum made of the given row and column index sets
  /// (sizes must be r; indices < side). For tests.
  std::vector<NodeId> quorum_from(const std::vector<std::uint32_t>& rows,
                                  const std::vector<std::uint32_t>& cols) const;

 private:
  std::uint32_t n_;
  std::uint32_t b_;
  std::uint32_t side_;  // k
  std::uint32_t r_;     // rows (and columns) per quorum
};

}  // namespace securestore::baselines
