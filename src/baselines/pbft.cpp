#include "baselines/pbft.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/hmac.h"
#include "util/serial.h"

namespace securestore::baselines {

// ---------------------------------------------------------------------------
// Config / op encoding
// ---------------------------------------------------------------------------

Bytes PbftConfig::pair_key(NodeId a, NodeId b) const {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  Writer info;
  info.str("pbft.pairkey.v1");
  info.u32(lo.value);
  info.u32(hi.value);
  return crypto::hkdf_sha256(session_master, /*salt=*/{}, info.data(), 32);
}

void PbftConfig::validate() const {
  if (replicas.size() != 3 * static_cast<std::size_t>(f) + 1) {
    throw std::invalid_argument("PbftConfig: need n == 3f+1 replicas");
  }
  if (session_master.empty()) {
    throw std::invalid_argument("PbftConfig: session_master required");
  }
}

Bytes PbftOp::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(item.value);
  w.bytes(value);
  return w.take();
}

PbftOp PbftOp::deserialize(BytesView data) {
  Reader r(data);
  PbftOp op;
  op.kind = static_cast<Kind>(r.u8());
  op.item = ItemId{r.u64()};
  op.value = r.bytes();
  r.expect_end();
  return op;
}

namespace {

// Wire helpers. Every replica-to-replica message is payload || mac where
// the MAC covers the payload under the (sender, receiver) pair key.

Bytes request_payload(std::uint64_t request_id, NodeId client_node, const PbftOp& op) {
  Writer w;
  w.u64(request_id);
  w.u32(client_node.value);
  w.bytes(op.serialize());
  return w.take();
}

}  // namespace

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

PbftReplica::PbftReplica(net::Transport& transport, NodeId id, PbftConfig config)
    : node_(transport, id), config_(std::move(config)) {
  config_.validate();
  node_.set_oneway_handler([this](NodeId from, net::MsgType type, BytesView body) {
    handle(from, type, body);
  });
}

Bytes PbftReplica::mac_for(NodeId peer, BytesView payload) const {
  return crypto::meter_mac(config_.pair_key(node_.id(), peer), payload);
}

bool PbftReplica::check_mac(NodeId peer, BytesView payload, BytesView mac) const {
  const Bytes expected = crypto::meter_mac(config_.pair_key(node_.id(), peer), payload);
  return constant_time_equal(expected, mac);
}

void PbftReplica::multicast(net::MsgType type, const Bytes& payload) {
  for (const NodeId replica : config_.replicas) {
    if (replica == node_.id()) continue;
    Writer w;
    w.bytes(payload);
    w.bytes(mac_for(replica, payload));
    node_.send_oneway(replica, type, w.take());
  }
}

void PbftReplica::handle(NodeId from, net::MsgType type, BytesView body) {
  try {
    switch (type) {
      case net::MsgType::kPbftRequest: on_request(from, body); break;
      case net::MsgType::kPbftPrePrepare: on_pre_prepare(from, body); break;
      case net::MsgType::kPbftPrepare: on_prepare(from, body); break;
      case net::MsgType::kPbftCommit: on_commit(from, body); break;
      default: break;
    }
  } catch (const DecodeError&) {
    // malformed: drop
  }
}

void PbftReplica::on_request(NodeId from, BytesView body) {
  if (!is_primary()) return;  // no view changes: clients talk to replica 0

  Reader r(body);
  const Bytes payload = r.bytes();
  const Bytes mac = r.bytes();
  r.expect_end();
  if (!check_mac(from, payload, mac)) return;

  const std::uint64_t seq = next_sequence_++;
  Slot& slot = log_[seq];
  slot.request = payload;
  slot.digest = crypto::meter_digest(payload);
  slot.pre_prepared = true;
  slot.sent_prepare = true;  // the pre-prepare doubles as the primary's prepare

  Writer pp;
  pp.u64(seq);
  pp.bytes(payload);
  multicast(net::MsgType::kPbftPrePrepare, pp.take());
  maybe_send_commit(seq);
}

void PbftReplica::on_pre_prepare(NodeId from, BytesView body) {
  if (from != config_.primary()) return;

  Reader outer(body);
  const Bytes payload = outer.bytes();
  const Bytes mac = outer.bytes();
  outer.expect_end();
  if (!check_mac(from, payload, mac)) return;

  Reader r(payload);
  const std::uint64_t seq = r.u64();
  const Bytes request = r.bytes();
  r.expect_end();

  Slot& slot = log_[seq];
  if (slot.pre_prepared) return;  // duplicate
  slot.request = request;
  slot.digest = crypto::meter_digest(request);
  slot.pre_prepared = true;
  slot.prepares.push_back(from);  // the primary's pre-prepare counts as its prepare

  if (!slot.sent_prepare) {
    slot.sent_prepare = true;
    Writer p;
    p.u64(seq);
    p.bytes(slot.digest);
    multicast(net::MsgType::kPbftPrepare, p.take());
  }
  maybe_send_commit(seq);
}

void PbftReplica::on_prepare(NodeId from, BytesView body) {
  Reader outer(body);
  const Bytes payload = outer.bytes();
  const Bytes mac = outer.bytes();
  outer.expect_end();
  if (!check_mac(from, payload, mac)) return;

  Reader r(payload);
  const std::uint64_t seq = r.u64();
  const Bytes digest = r.bytes();
  r.expect_end();

  Slot& slot = log_[seq];
  if (slot.pre_prepared && digest != slot.digest) return;  // mismatched digest
  if (std::find(slot.prepares.begin(), slot.prepares.end(), from) == slot.prepares.end()) {
    slot.prepares.push_back(from);
  }
  maybe_send_commit(seq);
}

void PbftReplica::maybe_send_commit(std::uint64_t seq) {
  Slot& slot = log_[seq];
  if (!slot.pre_prepared || slot.sent_commit) return;

  // prepared(): pre-prepare + 2f prepares from distinct replicas (own
  // implicit prepare counts via sent_prepare).
  const std::size_t own = slot.sent_prepare ? 1 : 0;
  if (slot.prepares.size() + own < 2 * config_.f + 1) return;

  slot.sent_commit = true;
  slot.commits.push_back(node_.id());
  Writer c;
  c.u64(seq);
  c.bytes(slot.digest);
  multicast(net::MsgType::kPbftCommit, c.take());
  maybe_execute();
}

void PbftReplica::on_commit(NodeId from, BytesView body) {
  Reader outer(body);
  const Bytes payload = outer.bytes();
  const Bytes mac = outer.bytes();
  outer.expect_end();
  if (!check_mac(from, payload, mac)) return;

  Reader r(payload);
  const std::uint64_t seq = r.u64();
  const Bytes digest = r.bytes();
  r.expect_end();

  Slot& slot = log_[seq];
  if (slot.pre_prepared && digest != slot.digest) return;
  if (std::find(slot.commits.begin(), slot.commits.end(), from) == slot.commits.end()) {
    slot.commits.push_back(from);
  }
  maybe_send_commit(seq);
  maybe_execute();
}

void PbftReplica::maybe_execute() {
  // Execute strictly in sequence order once committed (2f+1 commits).
  while (true) {
    const auto it = log_.find(next_execute_);
    if (it == log_.end()) return;
    Slot& slot = it->second;
    if (!slot.pre_prepared || slot.executed) return;
    if (slot.commits.size() < 2 * config_.f + 1) return;
    execute_slot(next_execute_);
    slot.executed = true;
    ++next_execute_;
  }
}

void PbftReplica::execute_slot(std::uint64_t seq) {
  Slot& slot = log_[seq];
  Reader r(slot.request);
  const std::uint64_t request_id = r.u64();
  const NodeId client_node{r.u32()};
  const PbftOp op = PbftOp::deserialize(r.bytes());
  r.expect_end();

  Bytes result;
  switch (op.kind) {
    case PbftOp::Kind::kPut:
      state_[op.item] = op.value;
      result = to_bytes("ok");
      break;
    case PbftOp::Kind::kGet: {
      const auto it = state_.find(op.item);
      result = it != state_.end() ? it->second : Bytes{};
      break;
    }
  }

  Writer reply;
  reply.u64(request_id);
  reply.bytes(result);
  const Bytes payload = reply.take();
  Writer w;
  w.bytes(payload);
  w.bytes(mac_for(client_node, payload));
  node_.send_oneway(client_node, net::MsgType::kPbftReply, w.take());
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

PbftClient::PbftClient(net::Transport& transport, NodeId network_id, PbftConfig config)
    : node_(transport, network_id), config_(std::move(config)) {
  config_.validate();
  node_.set_oneway_handler([this](NodeId from, net::MsgType type, BytesView body) {
    if (type == net::MsgType::kPbftReply) on_reply(from, body);
  });
}

void PbftClient::execute(const PbftOp& op, ResultCb done) {
  const std::uint64_t request_id = next_request_++;
  pending_[request_id].done = std::move(done);

  const Bytes payload = request_payload(request_id, node_.id(), op);
  Writer w;
  w.bytes(payload);
  w.bytes(crypto::meter_mac(config_.pair_key(node_.id(), config_.primary()), payload));
  node_.send_oneway(config_.primary(), net::MsgType::kPbftRequest, w.take());

  node_.transport().schedule(config_.client_timeout, [this, request_id] {
    const auto it = pending_.find(request_id);
    if (it == pending_.end() || it->second.finished) return;
    ResultCb cb = std::move(it->second.done);
    pending_.erase(it);
    cb(Result<Bytes>(Error::kTimeout, "pbft: no f+1 matching replies"));
  });
}

void PbftClient::on_reply(NodeId from, BytesView body) {
  try {
    Reader outer(body);
    const Bytes payload = outer.bytes();
    const Bytes mac = outer.bytes();
    outer.expect_end();
    const Bytes expected = crypto::meter_mac(config_.pair_key(node_.id(), from), payload);
    if (!constant_time_equal(expected, mac)) return;

    Reader r(payload);
    const std::uint64_t request_id = r.u64();
    const Bytes result = r.bytes();
    r.expect_end();

    const auto it = pending_.find(request_id);
    if (it == pending_.end() || it->second.finished) return;

    auto& votes = it->second.votes[result];
    if (std::find(votes.begin(), votes.end(), from) == votes.end()) votes.push_back(from);
    if (votes.size() >= config_.f + 1) {
      it->second.finished = true;
      ResultCb cb = std::move(it->second.done);
      Bytes value = result;
      pending_.erase(it);
      cb(Result<Bytes>(std::move(value)));
    }
  } catch (const DecodeError&) {
  }
}

}  // namespace securestore::baselines
