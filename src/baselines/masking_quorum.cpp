#include "baselines/masking_quorum.h"

#include <algorithm>

#include "util/serial.h"

namespace securestore::baselines {

Bytes MqEntry::signed_payload(ItemId item) const {
  Writer w;
  w.str("maskingquorum.write.v1");
  w.u64(item.value);
  w.u64(ts);
  w.u32(writer.value);
  w.bytes(value);
  return w.take();
}

namespace {

Bytes encode_entry(const MqEntry& entry) {
  Writer w;
  w.u64(entry.ts);
  w.u32(entry.writer.value);
  w.bytes(entry.value);
  w.bytes(entry.signature);
  return w.take();
}

MqEntry decode_entry(Reader& r) {
  MqEntry entry;
  entry.ts = r.u64();
  entry.writer = ClientId{r.u32()};
  entry.value = r.bytes();
  entry.signature = r.bytes();
  return entry;
}

}  // namespace

MqServer::MqServer(net::Transport& transport, NodeId id, core::StoreConfig config)
    : node_(transport, id), config_(std::move(config)) {
  node_.set_request_handler([this](NodeId from, net::MsgType type, BytesView body) {
    return handle(from, type, body);
  });
}

const MqEntry* MqServer::current(ItemId item) const {
  const auto it = items_.find(item);
  return it != items_.end() ? &it->second : nullptr;
}

std::optional<std::pair<net::MsgType, Bytes>> MqServer::handle(NodeId /*from*/,
                                                               net::MsgType type,
                                                               BytesView body) {
  try {
    switch (type) {
      case net::MsgType::kMqTimestamp: {
        Reader r(body);
        const ItemId item{r.u64()};
        r.expect_end();
        Writer w;
        const auto it = items_.find(item);
        w.u64(it != items_.end() ? it->second.ts : 0);
        return std::make_pair(net::MsgType::kMqTimestamp, w.take());
      }
      case net::MsgType::kMqWrite: {
        Reader r(body);
        const ItemId item{r.u64()};
        MqEntry entry = decode_entry(r);
        r.expect_end();

        Writer w;
        const auto key_it = config_.client_keys.find(entry.writer.value);
        const bool valid =
            key_it != config_.client_keys.end() &&
            crypto::meter_verify(key_it->second, entry.signed_payload(item), entry.signature);
        if (valid) {
          auto& stored = items_[item];
          if (entry.ts > stored.ts || stored.value.empty()) stored = std::move(entry);
          w.u8(1);
        } else {
          w.u8(0);
        }
        return std::make_pair(net::MsgType::kMqWrite, w.take());
      }
      case net::MsgType::kMqRead: {
        Reader r(body);
        const ItemId item{r.u64()};
        r.expect_end();
        Writer w;
        const auto it = items_.find(item);
        if (it == items_.end()) {
          w.u8(0);
        } else {
          w.u8(1);
          w.raw(encode_entry(it->second));
        }
        return std::make_pair(net::MsgType::kMqRead, w.take());
      }
      default:
        return std::nullopt;
    }
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

MqClient::MqClient(net::Transport& transport, NodeId network_id, ClientId client_id,
                   crypto::KeyPair keys, core::StoreConfig config, Options options, Rng rng)
    : node_(transport, network_id),
      client_id_(client_id),
      keys_(std::move(keys)),
      config_(std::move(config)),
      options_(options) {
  server_order_ = config_.servers;
  for (std::size_t i = server_order_.size(); i > 1; --i) {
    std::swap(server_order_[i - 1], server_order_[rng.next_below(i)]);
  }
}

std::vector<NodeId> MqClient::pick_servers(std::size_t count) const {
  std::vector<NodeId> out(server_order_.begin(),
                          server_order_.begin() +
                              static_cast<std::ptrdiff_t>(std::min(count, server_order_.size())));
  return out;
}

void MqClient::write(ItemId item, BytesView value, VoidCb done) {
  const std::size_t q = quorum();

  Writer ts_req;
  ts_req.u64(item.value);

  // Phase 1: learn the highest timestamp in some quorum.
  auto max_ts = std::make_shared<std::uint64_t>(0);
  auto replies = std::make_shared<std::size_t>(0);
  net::QuorumCall::start(
      node_, pick_servers(q), net::MsgType::kMqTimestamp, ts_req.data(),
      [max_ts, replies, q](NodeId /*from*/, net::MsgType /*type*/, BytesView body) {
        try {
          Reader r(body);
          *max_ts = std::max(*max_ts, r.u64());
          ++*replies;
        } catch (const DecodeError&) {
        }
        return *replies >= q;
      },
      [this, item, value = Bytes(value.begin(), value.end()), max_ts, replies, q,
       done](net::QuorumOutcome /*outcome*/, std::size_t) {
        if (*replies < q) {
          done(VoidResult(Error::kInsufficientQuorum, "timestamp quorum not reached"));
          return;
        }

        // Phase 2: store with ts+1 at a quorum.
        MqEntry entry;
        entry.ts = *max_ts + 1;
        entry.writer = client_id_;
        entry.value = value;
        entry.signature = crypto::meter_sign(keys_.seed, entry.signed_payload(item));

        Writer w;
        w.u64(item.value);
        w.raw(encode_entry(entry));

        auto acks = std::make_shared<std::size_t>(0);
        net::QuorumCall::start(
            node_, pick_servers(q), net::MsgType::kMqWrite, w.data(),
            [acks, q](NodeId /*from*/, net::MsgType /*type*/, BytesView body) {
              try {
                Reader r(body);
                if (r.u8() == 1) ++*acks;
              } catch (const DecodeError&) {
              }
              return *acks >= q;
            },
            [acks, q, done](net::QuorumOutcome /*outcome*/, std::size_t) {
              if (*acks >= q) {
                done(VoidResult{});
              } else {
                done(VoidResult(Error::kInsufficientQuorum, "write quorum not reached"));
              }
            },
            net::QuorumCall::Options{options_.round_timeout});
      },
      net::QuorumCall::Options{options_.round_timeout});
}

void MqClient::read(ItemId item, ReadCb done) {
  const std::size_t q = quorum();

  Writer req;
  req.u64(item.value);

  struct Candidate {
    MqEntry entry;
    std::size_t votes = 0;
  };
  auto candidates = std::make_shared<std::vector<Candidate>>();
  auto replies = std::make_shared<std::size_t>(0);

  net::QuorumCall::start(
      node_, pick_servers(q), net::MsgType::kMqRead, req.data(),
      [candidates, replies, q](NodeId /*from*/, net::MsgType /*type*/, BytesView body) {
        try {
          Reader r(body);
          ++*replies;
          if (r.u8() == 1) {
            MqEntry entry = decode_entry(r);
            auto it = std::find_if(candidates->begin(), candidates->end(),
                                   [&](const Candidate& c) {
                                     return c.entry.ts == entry.ts &&
                                            c.entry.value == entry.value &&
                                            c.entry.writer == entry.writer;
                                   });
            if (it == candidates->end()) {
              candidates->push_back(Candidate{std::move(entry), 1});
            } else {
              ++it->votes;
            }
          }
        } catch (const DecodeError&) {
        }
        return *replies >= q;
      },
      [this, candidates, replies, q, done](net::QuorumOutcome /*outcome*/, std::size_t) {
        if (*replies < q) {
          done(Result<Bytes>(Error::kInsufficientQuorum, "read quorum not reached"));
          return;
        }
        // Masking: the value is trusted only when b+1 servers agree on it;
        // choose the highest such timestamp.
        const Candidate* best = nullptr;
        for (const Candidate& candidate : *candidates) {
          if (candidate.votes < config_.b + 1) continue;
          if (best == nullptr || candidate.entry.ts > best->entry.ts) best = &candidate;
        }
        if (best == nullptr) {
          done(Result<Bytes>(Error::kNotFound, "no value with b+1 agreement"));
          return;
        }
        done(Result<Bytes>(best->entry.value));
      },
      net::QuorumCall::Options{options_.round_timeout});
}

}  // namespace securestore::baselines
