// Baseline B2: PBFT-lite state-machine replication (Castro–Liskov OSDI'99
// style), the paper's second comparison point (§3/§6).
//
// n = 3f+1 replicas execute every request in the same order through the
// three-phase pre-prepare / prepare / commit protocol; a client accepts a
// result once f+1 replicas report it. Replica-to-replica traffic is
// authenticated with pairwise HMAC authenticators rather than signatures —
// the computational saving §6 credits this approach — at the price of the
// O(n^2) message complexity §6 holds against it in wide-area settings.
//
// Deliberate simplifications (documented for the benches): a fixed primary
// (view changes are out of scope — no primary failures are injected in the
// comparison experiments), no checkpointing/garbage collection, and
// batching disabled. None of these affect the per-operation message or MAC
// counts that the experiments measure.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "crypto/keys.h"
#include "net/rpc.h"
#include "util/result.h"

namespace securestore::baselines {

struct PbftConfig {
  std::uint32_t f = 1;               // tolerated faults; n = 3f+1
  std::vector<NodeId> replicas;      // replicas[0] is the primary
  Bytes session_master;              // pairwise MAC keys derive from this
  SimDuration client_timeout = seconds(5);

  std::uint32_t n() const { return static_cast<std::uint32_t>(replicas.size()); }
  NodeId primary() const { return replicas.front(); }

  /// The symmetric key replica/client pair (a, b) share, derived from the
  /// session master (models pre-established session keys).
  Bytes pair_key(NodeId a, NodeId b) const;

  void validate() const;
};

/// A replicated operation: put stores bytes under an item, get fetches them.
struct PbftOp {
  enum class Kind : std::uint8_t { kPut = 0, kGet = 1 };
  Kind kind = Kind::kGet;
  ItemId item{};
  Bytes value;  // put only

  Bytes serialize() const;
  static PbftOp deserialize(BytesView data);
};

class PbftReplica {
 public:
  PbftReplica(net::Transport& transport, NodeId id, PbftConfig config);

  NodeId id() const { return node_.id(); }
  bool is_primary() const { return node_.id() == config_.primary(); }
  std::uint64_t executed_count() const { return next_execute_ - 1; }

  /// Test hook: the replica's state machine contents.
  const std::map<ItemId, Bytes>& state() const { return state_; }

 private:
  struct Slot {
    Bytes request;           // full client request (op + metadata)
    Bytes digest;            // d(request)
    std::vector<NodeId> prepares;
    std::vector<NodeId> commits;
    bool pre_prepared = false;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool executed = false;
  };

  void handle(NodeId from, net::MsgType type, BytesView body);
  void on_request(NodeId from, BytesView body);
  void on_pre_prepare(NodeId from, BytesView body);
  void on_prepare(NodeId from, BytesView body);
  void on_commit(NodeId from, BytesView body);
  void maybe_send_commit(std::uint64_t seq);
  void maybe_execute();
  void execute_slot(std::uint64_t seq);

  Bytes mac_for(NodeId peer, BytesView payload) const;
  bool check_mac(NodeId peer, BytesView payload, BytesView mac) const;
  void multicast(net::MsgType type, const Bytes& payload_sans_mac);

  net::RpcNode node_;
  PbftConfig config_;
  std::map<std::uint64_t, Slot> log_;
  std::uint64_t next_sequence_ = 1;  // primary only
  std::uint64_t next_execute_ = 1;
  std::map<ItemId, Bytes> state_;
};

class PbftClient {
 public:
  PbftClient(net::Transport& transport, NodeId network_id, PbftConfig config);

  using ResultCb = std::function<void(Result<Bytes>)>;

  /// Executes an operation through the replicated state machine; completes
  /// once f+1 replicas report the same result.
  void execute(const PbftOp& op, ResultCb done);

 private:
  void on_reply(NodeId from, BytesView body);

  net::RpcNode node_;
  PbftConfig config_;
  std::uint64_t next_request_ = 1;

  struct Pending {
    std::map<Bytes, std::vector<NodeId>> votes;  // result -> replicas
    ResultCb done;
    bool finished = false;
  };
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace securestore::baselines
