// Baseline B1: Byzantine masking-quorum replicated store
// (Malkhi–Reiter STOC'97 masking quorums; the Phalanx/Fleet design the
// paper compares against in §3/§6).
//
// Strong consistency (safe-variable semantics) at the price of large
// quorums: every read AND write contacts q = ⌈(n+2b+1)/2⌉ servers, any two
// quorums intersect in >= 2b+1 servers, and a read accepts only a value
// returned identically by >= b+1 servers (masking the b possible liars).
// Writes are two-phase: a timestamp query round then a store round.
//
// Signatures: like the secure store, writes are signed and each contacted
// server verifies — this is what makes the §6 comparison apples-to-apples
// ("the computational overheads of strong consistency quorums include
// signature verifications that are proportional to the size of the
// quorums").
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "core/config.h"
#include "crypto/keys.h"
#include "net/quorum.h"
#include "net/rpc.h"
#include "util/result.h"

namespace securestore::baselines {

/// What a masking-quorum server stores per item.
struct MqEntry {
  std::uint64_t ts = 0;
  ClientId writer{};
  Bytes value;
  Bytes signature;  // writer's signature over (item, ts, writer, value)

  Bytes signed_payload(ItemId item) const;
};

class MqServer {
 public:
  MqServer(net::Transport& transport, NodeId id, core::StoreConfig config);

  NodeId id() const { return node_.id(); }
  const MqEntry* current(ItemId item) const;

 private:
  std::optional<std::pair<net::MsgType, Bytes>> handle(NodeId from, net::MsgType type,
                                                       BytesView body);

  net::RpcNode node_;
  core::StoreConfig config_;
  std::map<ItemId, MqEntry> items_;
};

class MqClient {
 public:
  struct Options {
    SimDuration round_timeout = seconds(1);
  };

  MqClient(net::Transport& transport, NodeId network_id, ClientId client_id,
           crypto::KeyPair keys, core::StoreConfig config, Options options, Rng rng);

  using VoidCb = std::function<void(VoidResult)>;
  using ReadCb = std::function<void(Result<Bytes>)>;

  /// Two-phase write: timestamp query at q servers, then store at q servers.
  void write(ItemId item, BytesView value, VoidCb done);

  /// Read at q servers; accept the highest-timestamp value that >= b+1
  /// servers agree on.
  void read(ItemId item, ReadCb done);

  std::uint32_t quorum() const { return config_.masking_quorum(); }

  /// Test hook: fixes which servers make up the quorum (defaults to a
  /// seeded shuffle). Note the baseline has no escalation/retry logic —
  /// that is a secure-store feature.
  void set_server_preference(std::vector<NodeId> order) { server_order_ = std::move(order); }

 private:
  std::vector<NodeId> pick_servers(std::size_t count) const;

  net::RpcNode node_;
  ClientId client_id_;
  crypto::KeyPair keys_;
  core::StoreConfig config_;
  Options options_;
  std::vector<NodeId> server_order_;
};

}  // namespace securestore::baselines
