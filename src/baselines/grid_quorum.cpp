#include "baselines/grid_quorum.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace securestore::baselines {

namespace {

std::uint32_t integer_sqrt(std::uint32_t n) {
  auto root = static_cast<std::uint32_t>(std::lround(std::sqrt(static_cast<double>(n))));
  while (root * root > n) --root;
  while ((root + 1) * (root + 1) <= n) ++root;
  return root;
}

std::uint32_t ceil_sqrt(std::uint32_t n) {
  const std::uint32_t floor_root = integer_sqrt(n);
  return floor_root * floor_root == n ? floor_root : floor_root + 1;
}

/// Chooses `count` distinct values in [0, bound).
std::vector<std::uint32_t> sample_distinct(std::uint32_t count, std::uint32_t bound, Rng& rng) {
  std::vector<std::uint32_t> all(bound);
  for (std::uint32_t i = 0; i < bound; ++i) all[i] = i;
  for (std::size_t i = all.size(); i > 1; --i) {
    std::swap(all[i - 1], all[rng.next_below(i)]);
  }
  all.resize(count);
  return all;
}

}  // namespace

bool MGrid::valid_parameters(std::uint32_t n, std::uint32_t b) {
  if (n == 0) return false;
  const std::uint32_t k = integer_sqrt(n);
  if (k * k != n) return false;
  return ceil_sqrt(2 * b + 1) <= k;
}

MGrid::MGrid(std::uint32_t n, std::uint32_t b) : n_(n), b_(b) {
  if (!valid_parameters(n, b)) {
    throw std::invalid_argument("MGrid: n must be a square with ceil(sqrt(2b+1)) <= sqrt(n)");
  }
  side_ = integer_sqrt(n_);
  r_ = ceil_sqrt(2 * b_ + 1);
}

std::size_t MGrid::quorum_size() const {
  // r rows + r columns overlap in exactly r^2 cells.
  return static_cast<std::size_t>(2 * r_ * side_) - static_cast<std::size_t>(r_) * r_;
}

std::vector<NodeId> MGrid::quorum_from(const std::vector<std::uint32_t>& rows,
                                       const std::vector<std::uint32_t>& cols) const {
  if (rows.size() != r_ || cols.size() != r_) {
    throw std::invalid_argument("MGrid::quorum_from: need exactly r rows and r columns");
  }
  std::set<std::uint32_t> members;
  for (const std::uint32_t row : rows) {
    if (row >= side_) throw std::invalid_argument("MGrid: row out of range");
    for (std::uint32_t col = 0; col < side_; ++col) members.insert(row * side_ + col);
  }
  for (const std::uint32_t col : cols) {
    if (col >= side_) throw std::invalid_argument("MGrid: column out of range");
    for (std::uint32_t row = 0; row < side_; ++row) members.insert(row * side_ + col);
  }
  std::vector<NodeId> quorum;
  quorum.reserve(members.size());
  for (const std::uint32_t member : members) quorum.push_back(NodeId{member});
  return quorum;
}

std::vector<NodeId> MGrid::random_quorum(Rng& rng) const {
  return quorum_from(sample_distinct(r_, side_, rng), sample_distinct(r_, side_, rng));
}

}  // namespace securestore::baselines
