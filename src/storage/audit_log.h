// Tamper-evident audit log.
//
// The Bayou follow-up the paper discusses in §3 ([Spreitzer et al. 1997])
// "propose[d] logging and auditing of writes and reads to detect and
// rectify damage done by malicious servers". This is that mechanism: every
// accepted write is appended to a hash chain
//
//   h_0 = H("audit-genesis"),   h_i = H(h_{i-1} · entry_i)
//
// so an auditor who fetches a server's log can verify that nothing was
// retroactively altered or deleted (any edit breaks every subsequent link),
// and can cross-compare logs from different servers: a signed write present
// in one honest log but permanently absent from another server's log
// convicts that server of suppression (§4 requires non-faulty servers to
// propagate all updates they have seen).
#pragma once

#include <cstdint>
#include <vector>

#include "core/record.h"
#include "util/bytes.h"
#include "util/time.h"

namespace securestore::storage {

struct AuditEntry {
  std::uint64_t sequence = 0;   // position in this server's chain
  SimTime accepted_at = 0;      // server-local time of acceptance
  ItemId item{};
  core::Timestamp ts;
  ClientId writer{};
  Bytes record_digest;          // d(signed payload): identifies the write
  Bytes chain_hash;             // h_i

  void encode(Writer& w) const;
  static AuditEntry decode(Reader& r);
};

class AuditLog {
 public:
  AuditLog();

  /// Appends an accepted write. Returns the new chain head.
  const Bytes& append(const core::WriteRecord& record, SimTime accepted_at);

  const std::vector<AuditEntry>& entries() const { return entries_; }
  const Bytes& head() const { return head_; }
  std::size_t size() const { return entries_.size(); }

  Bytes serialize() const;
  static AuditLog deserialize(BytesView data);

  /// Recomputes the whole chain; false if any link (or the head) is broken.
  bool verify() const;

  /// True iff a write with this record digest appears in the log.
  bool contains(BytesView record_digest) const;

 private:
  static Bytes genesis();
  static Bytes link(BytesView previous, const AuditEntry& entry);

  std::vector<AuditEntry> entries_;
  Bytes head_;
};

/// Cross-server audit findings.
struct AuditFinding {
  enum class Kind {
    kBrokenChain,     // a server's log fails hash verification
    kMissingWrite,    // a write known to peers is absent from this server
  };
  Kind kind;
  NodeId server{};
  Bytes record_digest;  // the affected write (kMissingWrite)
  std::string detail;
};

/// Compares verified logs across servers. Dissemination carries each
/// item's NEWEST record (superseded versions are legitimately absent from
/// peers), so the suppression check is per item: for every item, the newest
/// stable write any verified log records must be matched-or-exceeded by
/// every other log. `tolerate_tail` skips the newest entries of each log
/// when establishing the baseline (dissemination lag is not suppression).
std::vector<AuditFinding> cross_audit(
    const std::vector<std::pair<NodeId, const AuditLog*>>& logs,
    std::size_t tolerate_tail);

}  // namespace securestore::storage
