// Durable snapshots of server state.
//
// The secure store exists for "safe keeping" of long-term state (§1, §4),
// so a server must survive its own restarts. A snapshot serializes every
// record and context a server holds behind a magic/version header and a
// SHA-256 checksum; restore verifies the checksum, then REPLAYS records
// through ItemStore::apply and ContextStore::apply so every invariant
// (ordering, equivocation flags, log bounds) is re-established rather than
// trusted from disk. A snapshot tampered with on disk fails the checksum —
// and even if the checksum were fixed up, individual records still carry
// writer signatures the server re-verifies on use.
#pragma once

#include <string>

#include "storage/context_store.h"
#include "storage/engine.h"
#include "util/bytes.h"

namespace securestore::storage {

/// Serializes both stores into one snapshot blob. A persistent engine
/// checkpoints its records through its own files; the server then passes
/// `include_records=false` so the blob carries only contexts and flags.
Bytes make_snapshot(const StorageEngine& items, const ContextStore& contexts,
                    bool include_records = true);

/// Rebuilds the stores from a snapshot. Throws DecodeError on a malformed
/// or checksum-failing snapshot. The stores should be empty (records are
/// replayed additively).
void restore_snapshot(BytesView snapshot, StorageEngine& items, ContextStore& contexts);

/// File helpers (atomic-ish: write to a temp name, then rename).
void save_snapshot_file(const std::string& path, BytesView snapshot);
/// Throws std::runtime_error if the file cannot be read.
Bytes load_snapshot_file(const std::string& path);

}  // namespace securestore::storage
