// Server-side storage for client contexts (Fig. 1).
//
// One signed context per (owner, group). A newer context replaces the
// stored one only if it dominates it — a non-faulty server never lets a
// replayed old context regress what it stores. Signatures are verified by
// the server before the store is touched.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "core/record.h"
#include "util/ids.h"

namespace securestore::storage {

class ContextStore {
 public:
  /// Stores (or refreshes) a context. Returns false if an already-stored
  /// context is at least as new (the incoming one is ignored).
  bool apply(const core::StoredContext& stored);

  /// The stored context of `owner` for `group`, if any.
  const core::StoredContext* get(ClientId owner, GroupId group) const;

  /// Every stored context, for snapshots.
  std::vector<const core::StoredContext*> all() const;

  std::size_t size() const { return contexts_.size(); }

 private:
  using Key = std::pair<std::uint32_t, std::uint64_t>;  // (owner, group)
  static Key make_key(ClientId owner, GroupId group) {
    return Key{owner.value, group.value};
  }

  std::map<Key, core::StoredContext> contexts_;
};

}  // namespace securestore::storage
