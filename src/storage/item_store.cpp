#include "storage/item_store.h"

#include <algorithm>

namespace securestore::storage {

namespace {

bool same_write(const core::WriteRecord& a, const core::WriteRecord& b) {
  return a.ts == b.ts && a.writer == b.writer;
}

}  // namespace

ApplyResult ItemStore::apply(const core::WriteRecord& record) {
  ItemState& state = items_[record.item];

  // Equivocation check against the current value and the log.
  auto equivocates_with = [&](const core::WriteRecord& existing) {
    return existing.ts.equivocates(record.ts);
  };
  if ((state.current && equivocates_with(*state.current)) ||
      std::any_of(state.history.begin(), state.history.end(), equivocates_with)) {
    state.faulty_writer = true;
    return ApplyResult::kEquivocation;
  }

  if (!state.current) {
    state.current = record;
    return ApplyResult::kStoredNewer;
  }

  if (same_write(*state.current, record)) return ApplyResult::kDuplicate;
  if (std::any_of(state.history.begin(), state.history.end(),
                  [&](const core::WriteRecord& h) { return same_write(h, record); })) {
    return ApplyResult::kDuplicate;
  }

  if (state.current->ts < record.ts) {
    // New current; the old one goes to the head of the history log.
    state.history.push_front(std::move(*state.current));
    state.current = record;
    if (state.history.size() > max_log_entries_) state.history.pop_back();
    return ApplyResult::kStoredNewer;
  }

  // Older than current: keep in the log (sorted, newest first) so §5.3
  // readers can still find a value that b+1 servers agree on while the
  // newest value is disseminating.
  const auto position = std::find_if(
      state.history.begin(), state.history.end(),
      [&](const core::WriteRecord& h) { return h.ts < record.ts; });
  state.history.insert(position, record);
  if (state.history.size() > max_log_entries_) state.history.pop_back();
  return ApplyResult::kLogged;
}

const core::WriteRecord* ItemStore::current(ItemId item) const {
  const auto it = items_.find(item);
  if (it == items_.end() || !it->second.current) return nullptr;
  return &*it->second.current;
}

std::vector<core::WriteRecord> ItemStore::log(ItemId item) const {
  std::vector<core::WriteRecord> out;
  const auto it = items_.find(item);
  if (it == items_.end()) return out;
  if (it->second.current) out.push_back(*it->second.current);
  out.insert(out.end(), it->second.history.begin(), it->second.history.end());
  return out;
}

bool ItemStore::flagged_faulty(ItemId item) const {
  const auto it = items_.find(item);
  return it != items_.end() && it->second.faulty_writer;
}

std::vector<ItemId> ItemStore::flagged_items() const {
  std::vector<ItemId> out;
  for (const auto& [item, state] : items_) {
    if (state.faulty_writer) out.push_back(item);
  }
  return out;
}

std::vector<core::WriteRecord> ItemStore::group_meta(GroupId group) const {
  std::vector<core::WriteRecord> out;
  for (const auto& [item, state] : items_) {
    if (state.current && state.current->group == group) {
      out.push_back(state.current->meta_only());
    }
  }
  return out;
}

std::vector<CurrentEntry> ItemStore::current_index() const {
  std::vector<CurrentEntry> out;
  out.reserve(items_.size());
  for (const auto& [item, state] : items_) {
    if (state.current) out.push_back({item, state.current->ts, state.current->flags});
  }
  return out;
}

std::vector<core::WriteRecord> ItemStore::records_snapshot() const {
  std::vector<core::WriteRecord> out;
  for (const auto& [item, state] : items_) {
    if (state.current) out.push_back(*state.current);
    for (const core::WriteRecord& record : state.history) out.push_back(record);
  }
  return out;
}

std::vector<const core::WriteRecord*> ItemStore::all_current() const {
  std::vector<const core::WriteRecord*> out;
  out.reserve(items_.size());
  for (const auto& [item, state] : items_) {
    if (state.current) out.push_back(&*state.current);
  }
  return out;
}

std::vector<const core::WriteRecord*> ItemStore::all_records() const {
  std::vector<const core::WriteRecord*> out;
  for (const auto& [item, state] : items_) {
    if (state.current) out.push_back(&*state.current);
    for (const core::WriteRecord& record : state.history) out.push_back(&record);
  }
  return out;
}

std::size_t ItemStore::prune_log(ItemId item, const core::Timestamp& ts) {
  const auto it = items_.find(item);
  if (it == items_.end()) return 0;
  auto& history = it->second.history;
  const std::size_t before = history.size();
  std::erase_if(history, [&](const core::WriteRecord& h) { return h.ts < ts; });
  return before - history.size();
}

std::size_t ItemStore::total_log_entries() const {
  std::size_t total = 0;
  for (const auto& [item, state] : items_) total += state.history.size();
  return total;
}

}  // namespace securestore::storage
