#include "storage/hold_queue.h"

namespace securestore::storage {

bool HoldQueue::dependencies_met(const core::WriteRecord& record, const HaveFn& have) {
  for (const auto& [item, ts] : record.writer_context.entries()) {
    if (item == record.item) continue;  // self-entry names this very write
    if (ts.is_zero()) continue;
    if (!have(item, ts)) return false;
  }
  return true;
}

void HoldQueue::hold(core::WriteRecord record) { held_.push_back(std::move(record)); }

std::vector<core::WriteRecord> HoldQueue::release(const HaveFn& have) {
  std::vector<core::WriteRecord> released;
  for (auto it = held_.begin(); it != held_.end();) {
    if (dependencies_met(*it, have)) {
      released.push_back(std::move(*it));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  return released;
}

}  // namespace securestore::storage
