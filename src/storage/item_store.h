// Server-side versioned item storage.
//
// A server keeps, per data item, the current (newest) signed write record
// plus a bounded log of recent superseded writes (§5.3: "non-malicious
// servers log the writes and report a set of latest writes for a particular
// data item so that a client can choose a common value from b+1 lists").
//
// The store also watches for writer equivocation: two records for the same
// item with equal (time, uid) but different digests mark the writer faulty,
// and readers of the item are informed (§5.3: "clients accessing this data
// item can be informed that the value cannot be assumed to be correct").
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/record.h"
#include "util/ids.h"

namespace securestore::storage {

enum class ApplyResult {
  kStoredNewer,    // became the current value
  kLogged,         // older than current but retained in the log
  kDuplicate,      // already have this exact write
  kEquivocation,   // exposes the writer as faulty; item flagged
};

class ItemStore {
 public:
  explicit ItemStore(std::size_t max_log_entries = 16) : max_log_entries_(max_log_entries) {}

  /// Applies a (already signature-verified) record. Ordering is by the
  /// record timestamp; never downgrades the current value.
  ApplyResult apply(const core::WriteRecord& record);

  /// The current record for an item, if any.
  const core::WriteRecord* current(ItemId item) const;

  /// The item's recent-writes log, newest first, current value included —
  /// what a §5.3 LogRead returns.
  std::vector<core::WriteRecord> log(ItemId item) const;

  /// True once equivocation has been observed for the item's writer.
  bool flagged_faulty(ItemId item) const;

  /// Items whose writer was caught equivocating. Snapshots persist these
  /// explicitly: the exposing record is never stored, so the flag cannot be
  /// re-derived from replayed records alone.
  std::vector<ItemId> flagged_items() const;

  /// Restores a persisted equivocation flag (snapshot restore).
  void flag_faulty(ItemId item) { items_[item].faulty_writer = true; }

  /// Items of a group with their current meta records (for context
  /// reconstruction, §5.1).
  std::vector<core::WriteRecord> group_meta(GroupId group) const;

  /// All current records (gossip digests iterate these).
  std::vector<const core::WriteRecord*> all_current() const;

  /// Every record held — current values and log history — for snapshots.
  std::vector<const core::WriteRecord*> all_records() const;

  /// Prunes log entries strictly older than `ts` (stability certificate
  /// handling, §5.3). Returns how many entries were erased.
  std::size_t prune_log(ItemId item, const core::Timestamp& ts);

  /// Total log entries across items (bench E7 measures retention).
  std::size_t total_log_entries() const;

  std::size_t item_count() const { return items_.size(); }

 private:
  struct ItemState {
    std::optional<core::WriteRecord> current;
    std::deque<core::WriteRecord> history;  // superseded writes, newest first
    bool faulty_writer = false;
  };

  std::unordered_map<ItemId, ItemState> items_;
  std::size_t max_log_entries_;
};

}  // namespace securestore::storage
