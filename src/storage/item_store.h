// Server-side versioned item storage.
//
// A server keeps, per data item, the current (newest) signed write record
// plus a bounded log of recent superseded writes (§5.3: "non-malicious
// servers log the writes and report a set of latest writes for a particular
// data item so that a client can choose a common value from b+1 lists").
//
// The store also watches for writer equivocation: two records for the same
// item with equal (time, uid) but different digests mark the writer faulty,
// and readers of the item are informed (§5.3: "clients accessing this data
// item can be informed that the value cannot be assumed to be correct").
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/record.h"
#include "storage/engine.h"
#include "util/ids.h"

namespace securestore::storage {

class ItemStore final : public StorageEngine {
 public:
  explicit ItemStore(std::size_t max_log_entries = 16) : max_log_entries_(max_log_entries) {}

  ApplyResult apply(const core::WriteRecord& record) override;

  /// The current record for an item, if any. The returned pointer stays
  /// valid until the record is superseded or the store destroyed — stronger
  /// than the base-class contract, which callers written against
  /// `StorageEngine` must not rely on.
  const core::WriteRecord* current(ItemId item) const override;

  std::vector<core::WriteRecord> log(ItemId item) const override;

  bool flagged_faulty(ItemId item) const override;

  std::vector<ItemId> flagged_items() const override;

  void flag_faulty(ItemId item) override { items_[item].faulty_writer = true; }

  std::vector<core::WriteRecord> group_meta(GroupId group) const override;

  std::vector<CurrentEntry> current_index() const override;

  std::vector<core::WriteRecord> records_snapshot() const override;

  /// All current records (snapshot serialization iterates these; engine
  /// callers use current_index()).
  std::vector<const core::WriteRecord*> all_current() const;

  /// Every record held — current values and log history — for snapshots.
  std::vector<const core::WriteRecord*> all_records() const;

  std::size_t prune_log(ItemId item, const core::Timestamp& ts) override;

  std::size_t total_log_entries() const override;

  std::size_t item_count() const override { return items_.size(); }

 private:
  struct ItemState {
    std::optional<core::WriteRecord> current;
    std::deque<core::WriteRecord> history;  // superseded writes, newest first
    bool faulty_writer = false;
  };

  std::unordered_map<ItemId, ItemState> items_;
  std::size_t max_log_entries_;
};

}  // namespace securestore::storage
