// Sorted string tables for the LSM engine (DESIGN.md §12).
//
// An SST is one immutable file of write records (plus equivocation-flag
// entries), produced by a memtable flush or a compaction merge. Layout:
//
//   header   : str magic, u32 version
//   frames   : [u32 body_len, u32 crc32(body), body]*
//              body = u8 kind, then kind-specific payload
//                kind 1 (record): WriteRecord::encode
//                kind 2 (flag)  : u64 item uid
//                kind 3 (tombstone): reserved for future point deletes
//   index    : u32 count, then per entry the version key + frame location,
//              so recovery rebuilds the in-memory index without touching
//              any value bytes
//   footer   : u64 index_offset, u64 covered_lsn, u32 crc32(file up to
//              here), u64 footer magic — fixed 28 bytes at EOF
//
// Like WAL frames, the CRCs guard against accidental damage (torn writes,
// bit rot); tampering is caught by the per-record writer signatures the
// server re-verifies on use. A file failing footer or CRC validation is
// quarantined (renamed `*.corrupt`) rather than trusted or deleted.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/record.h"
#include "util/bytes.h"
#include "util/ids.h"
#include "util/serial.h"

namespace securestore::storage::lsm {

inline constexpr char kSstMagic[] = "SECURESTORE-SST";
inline constexpr std::uint32_t kSstVersion = 1;
/// "SSTFEND1", little-endian.
inline constexpr std::uint64_t kSstFooterMagic = 0x31444E4546545353ull;
inline constexpr std::size_t kSstFooterSize = 28;

enum class SstEntryKind : std::uint8_t {
  kRecord = 1,
  kFlag = 2,
  kTombstone = 3,  // reserved; nothing emits these yet
};

/// One row of an SST's index section: the full version identity (item,
/// timestamp, digest, record writer) plus where the frame lives.
struct SstIndexEntry {
  SstEntryKind kind = SstEntryKind::kRecord;
  ItemId item{};
  GroupId group{};
  std::uint64_t time = 0;
  ClientId ts_writer{};
  Bytes digest;
  ClientId rec_writer{};
  std::uint8_t rflags = 0;
  std::uint64_t offset = 0;     // frame start (the body_len field)
  std::uint32_t frame_len = 0;  // 8 + body_len
};

/// Accumulates one SST in memory, then writes it atomically: temp file,
/// write, fsync, rename, directory fsync — the same discipline snapshots
/// use, so a crash leaves either no file or a complete one (and a torn
/// rename is caught by the footer CRC).
class SstBuilder {
 public:
  SstBuilder();

  /// Returns the frame's (offset, frame_len) so the caller can point its
  /// in-memory index at the new file.
  std::pair<std::uint64_t, std::uint32_t> add_record(const core::WriteRecord& record);
  void add_flag(ItemId item);

  std::size_t entry_count() const { return index_.size(); }
  /// Bytes of frame data so far — compaction splits output at a target.
  std::size_t data_bytes() const { return buffer_.data().size(); }

  /// Writes and fsyncs the finished file. Throws std::runtime_error on any
  /// I/O failure. The builder is spent afterwards.
  void finish(const std::string& path, std::uint64_t covered_lsn);

 private:
  Writer buffer_;
  std::vector<SstIndexEntry> index_;
};

/// Read side: validates the whole file once at open (footer magic, file
/// CRC, index decode), then serves point reads by pread — values are never
/// resident beyond the caller's copy.
class SstReader {
 public:
  /// nullptr when the file is missing, torn or corrupt; the caller decides
  /// whether to quarantine.
  static std::unique_ptr<SstReader> open(const std::string& path);
  ~SstReader();

  SstReader(const SstReader&) = delete;
  SstReader& operator=(const SstReader&) = delete;

  const std::vector<SstIndexEntry>& index() const { return index_; }
  std::uint64_t covered_lsn() const { return covered_lsn_; }
  const std::string& path() const { return path_; }

  /// Reads one record frame. Thread-safe (stateless pread). nullopt on
  /// runtime damage (frame CRC mismatch, short read) — the caller counts
  /// the error and treats the version as missing; gossip anti-entropy
  /// repairs it from the other replicas.
  std::optional<core::WriteRecord> read_record(std::uint64_t offset,
                                               std::uint32_t frame_len) const;

 private:
  SstReader(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  std::uint64_t covered_lsn_ = 0;
  std::vector<SstIndexEntry> index_;
};

/// `sst-<16 hex digits of file_no>.sst`.
std::string sst_filename(std::uint32_t file_no);

/// Renames a damaged artifact to `<path>.corrupt` so it survives for
/// forensics but is never trusted again. Returns false if the rename fails.
bool quarantine_file(const std::string& path);

}  // namespace securestore::storage::lsm
