#include "storage/lsm/lsm_store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <tuple>

#include "crypto/sha2.h"
#include "storage/snapshot.h"  // save_snapshot_file / load_snapshot_file
#include "storage/wal/wal.h"   // fsync_dir
#include "util/serial.h"

namespace securestore::storage::lsm {

namespace fs = std::filesystem;

namespace {

/// Approximate resident footprint of one memtable record: variable-length
/// payloads plus a fixed allowance for the struct, map node and context.
std::size_t approx_size(const core::WriteRecord& record) {
  return record.value.size() + record.value_digest.size() + record.signature.size() +
         record.ts.digest.size() + 160;
}

obs::Registry& resolve_registry(obs::Registry* shared,
                                std::unique_ptr<obs::Registry>& owned) {
  if (shared != nullptr) return *shared;
  owned = std::make_unique<obs::Registry>();
  return *owned;
}

}  // namespace

LsmStore::VersionKey LsmStore::key_of(const core::WriteRecord& record) {
  return VersionKey{record.item, record.ts.time, record.ts.writer, record.ts.digest,
                    record.writer};
}

LsmStore::LsmStore(Options options)
    : options_(std::move(options)),
      memtable_bytes_gauge_(resolve_registry(options_.registry, owned_registry_)
                                .gauge(options_.metric_prefix + "storage.memtable_bytes" +
                                       options_.metric_suffix)),
      flushes_(registry().counter(options_.metric_prefix + "storage.flushes" +
                                  options_.metric_suffix)),
      compactions_(registry().counter(options_.metric_prefix + "storage.compactions" +
                                      options_.metric_suffix)),
      sst_files_gauge_(registry().gauge(options_.metric_prefix + "storage.sst_files" +
                                        options_.metric_suffix)),
      compaction_lag_us_(registry().histogram(options_.metric_prefix +
                                              "storage.compaction_lag_us" +
                                              options_.metric_suffix)),
      read_errors_(registry().counter(options_.metric_prefix + "storage.sst_read_errors" +
                                      options_.metric_suffix)),
      quarantined_(registry().counter(options_.metric_prefix + "storage.quarantined" +
                                      options_.metric_suffix)) {
  std::unique_lock<std::mutex> lock(mu_);
  recover_locked();
  lock.unlock();
  compactor_ = std::thread([this] { compaction_thread(); });
}

LsmStore::~LsmStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  // The memtable is deliberately NOT flushed here: crash semantics are the
  // contract, and everything in the memtable is still in the WAL.
}

obs::Registry& LsmStore::registry() const {
  return options_.registry != nullptr ? *options_.registry : *owned_registry_;
}

std::string LsmStore::file_path(std::uint32_t file_no) const {
  return options_.dir + "/" + sst_filename(file_no);
}

// --- Recovery --------------------------------------------------------------

void LsmStore::recover_locked() {
  fs::create_directories(options_.dir);

  // Leftovers from interrupted atomic writes are garbage by construction.
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.ends_with(".tmp")) {
      std::error_code ec;
      fs::remove_all(entry.path(), ec);
    }
  }

  bool lost_data = false;
  bool have_manifest = false;
  std::uint64_t manifest_covered = 0;
  std::vector<std::pair<std::uint8_t, std::uint32_t>> manifest_files;

  const std::string manifest_path = options_.dir + "/" + kManifestName;
  if (fs::exists(manifest_path)) {
    try {
      const Bytes raw = load_snapshot_file(manifest_path);
      Reader r(raw);
      if (r.str() != kManifestMagic) throw DecodeError("lsm: manifest bad magic");
      if (r.u32() != kManifestVersion) throw DecodeError("lsm: manifest bad version");
      const Bytes checksum = r.bytes();
      const Bytes body = r.bytes();
      r.expect_end();
      if (crypto::sha256(body) != checksum) throw DecodeError("lsm: manifest checksum");
      Reader br(body);
      next_file_no_ = static_cast<std::uint32_t>(br.u64());
      manifest_covered = br.u64();
      const std::uint32_t count = br.u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t level = br.u8();
        const auto file_no = br.u32();
        manifest_files.emplace_back(level, file_no);
      }
      br.expect_end();
      have_manifest = true;
    } catch (const std::exception&) {
      // Torn or rotten manifest: quarantine it and fall back to scanning
      // the directory — every SST is self-validating.
      quarantine_file(manifest_path);
      ++quarantined_count_;
      quarantined_.inc();
      lost_data = true;
    }
  }

  if (have_manifest) {
    std::set<std::string> expected;
    for (const auto& [level, file_no] : manifest_files) {
      const std::string path = file_path(file_no);
      expected.insert(sst_filename(file_no));
      auto reader = SstReader::open(path);
      if (!reader) {
        // Missing or damaged SST named by the manifest: its records may be
        // gone locally. Quarantine what's there, replay every WAL segment
        // we still have (durable_lsn 0), and let gossip repair the rest.
        if (fs::exists(path)) quarantine_file(path);
        ++quarantined_count_;
        quarantined_.inc();
        lost_data = true;
        continue;
      }
      files_.push_back(SstFile{file_no, level, std::move(reader)});
    }
    // SSTs on disk but not in the manifest are flush or compaction outputs
    // whose install never committed; their contents are still covered by
    // the WAL (flush) or duplicated in the inputs (compaction).
    for (const auto& entry : fs::directory_iterator(options_.dir)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.starts_with("sst-") && name.ends_with(".sst") &&
          !expected.contains(name)) {
        std::error_code ec;
        fs::remove(entry.path(), ec);
      }
    }
  } else {
    load_fallback_locked();
    lost_data = lost_data || quarantined_count_ > 0;
  }

  std::sort(files_.begin(), files_.end(),
            [](const SstFile& a, const SstFile& b) { return a.file_no < b.file_no; });
  for (const SstFile& file : files_) {
    next_file_no_ = std::max(next_file_no_, file.file_no + 1);
  }

  if (lost_data) {
    durable_lsn_ = 0;
  } else if (have_manifest) {
    durable_lsn_ = manifest_covered;
  } else {
    for (const SstFile& file : files_) {
      durable_lsn_ = std::max(durable_lsn_, file.reader->covered_lsn());
    }
  }
  wal_watermark_ = durable_lsn_;

  rebuild_index_locked();
  sst_files_gauge_.set(static_cast<std::int64_t>(files_.size()));
}

void LsmStore::load_fallback_locked() {
  // No (trustworthy) manifest: adopt every SST that validates, as one L0
  // level ordered by file number. Flushes never delete earlier SSTs and
  // compaction unlinks its inputs only after the merged outputs are
  // durable, so the union of valid SSTs contains every flushed record.
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    if (!entry.is_regular_file() || !name.starts_with("sst-") || !name.ends_with(".sst")) {
      continue;
    }
    auto reader = SstReader::open(entry.path().string());
    if (!reader) {
      quarantine_file(entry.path().string());
      ++quarantined_count_;
      quarantined_.inc();
      continue;
    }
    std::uint32_t file_no = 0;
    try {
      file_no = static_cast<std::uint32_t>(
          std::stoull(name.substr(4, name.size() - 8), nullptr, 16));
    } catch (const std::exception&) {
      quarantine_file(entry.path().string());
      ++quarantined_count_;
      quarantined_.inc();
      continue;
    }
    files_.push_back(SstFile{file_no, 0, std::move(reader)});
  }
}

void LsmStore::rebuild_index_locked() {
  // Ascending file number: compaction outputs and later flushes carry
  // higher numbers, so "later file wins" dedupes re-located frames.
  struct Acc {
    std::map<VersionKey, Version> versions;
    bool faulty = false;
  };
  std::unordered_map<ItemId, Acc> acc;
  for (const SstFile& file : files_) {
    for (const SstIndexEntry& entry : file.reader->index()) {
      if (entry.kind == SstEntryKind::kFlag) {
        acc[entry.item].faulty = true;
        continue;
      }
      if (entry.kind != SstEntryKind::kRecord) continue;
      VersionKey key{entry.item, entry.time, entry.ts_writer, entry.digest,
                     entry.rec_writer};
      Version version;
      version.ts = core::Timestamp{entry.time, entry.ts_writer, entry.digest};
      version.rec_writer = entry.rec_writer;
      version.rflags = entry.rflags;
      version.group = entry.group;
      version.file_no = file.file_no;
      version.offset = entry.offset;
      version.frame_len = entry.frame_len;
      acc[entry.item].versions[std::move(key)] = std::move(version);
    }
  }
  index_.clear();
  for (auto& [item, a] : acc) {
    ItemIndex idx;
    idx.faulty = a.faulty;
    idx.versions.reserve(a.versions.size());
    for (auto& [key, version] : a.versions) idx.versions.push_back(std::move(version));
    std::sort(idx.versions.begin(), idx.versions.end(),
              [](const Version& x, const Version& y) {
                if (x.ts.time != y.ts.time) return x.ts.time > y.ts.time;
                if (x.ts.writer != y.ts.writer) return x.ts.writer > y.ts.writer;
                return x.ts.digest > y.ts.digest;
              });
    // Re-apply the log bound. SSTs may still hold versions that were pruned
    // or trimmed before the crash; keeping the newest 1 + max_log_entries
    // merely matches a replica that had not yet processed the stability
    // certificate — §5.3 permits erasing, it does not require it.
    if (idx.versions.size() > options_.max_log_entries + 1) {
      idx.versions.resize(options_.max_log_entries + 1);
    }
    index_.emplace(item, std::move(idx));
  }
}

// --- Apply path ------------------------------------------------------------

ApplyResult LsmStore::apply(const core::WriteRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  ItemIndex& idx = index_[record.item];

  for (const Version& v : idx.versions) {
    if (v.ts.equivocates(record.ts)) {
      // The exposing record never enters the memtable, so the flag must be
      // carried by the next flush even if the memtable is empty then.
      if (!idx.faulty) flags_dirty_ = true;
      idx.faulty = true;
      return ApplyResult::kEquivocation;
    }
  }
  const VersionKey key = key_of(record);
  for (const Version& v : idx.versions) {
    if (v.ts == record.ts && v.rec_writer == record.writer) return ApplyResult::kDuplicate;
  }

  Version version;
  version.ts = record.ts;
  version.rec_writer = record.writer;
  version.rflags = record.flags;
  version.group = record.group;

  ApplyResult result;
  if (idx.versions.empty() || idx.versions.front().ts < record.ts) {
    idx.versions.insert(idx.versions.begin(), std::move(version));
    result = ApplyResult::kStoredNewer;
  } else {
    // Older than current: keep in the log (sorted, newest first) so §5.3
    // readers can still find a value b+1 servers agree on.
    auto position = std::find_if(
        idx.versions.begin() + 1, idx.versions.end(),
        [&](const Version& v) { return v.ts < record.ts; });
    idx.versions.insert(position, std::move(version));
    result = ApplyResult::kLogged;
  }

  memtable_bytes_ += approx_size(record);
  memtable_.emplace(key, record);

  if (idx.versions.size() > options_.max_log_entries + 1) {
    drop_version_locked(record.item, idx.versions.back());
    idx.versions.pop_back();
  }
  memtable_bytes_gauge_.set(static_cast<std::int64_t>(memtable_bytes_));

  if (memtable_bytes_ >= options_.memtable_budget_bytes) flush_locked();
  return result;
}

void LsmStore::drop_version_locked(ItemId item, const Version& version) {
  if (version.file_no != kMemtableFileNo) return;  // compaction filter drops it later
  const VersionKey key{item, version.ts.time, version.ts.writer, version.ts.digest,
                       version.rec_writer};
  const auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    const std::size_t size = approx_size(it->second);
    memtable_bytes_ -= std::min(memtable_bytes_, size);
    memtable_.erase(it);
  }
}

// --- Read path -------------------------------------------------------------

void LsmStore::reap_doomed_locked() const {
  if (doomed_.empty()) return;
  for (const VersionKey& key : doomed_) {
    const auto it = index_.find(key.item);
    if (it == index_.end()) continue;
    auto& versions = it->second.versions;
    std::erase_if(versions, [&](const Version& v) {
      return v.file_no != kMemtableFileNo && v.ts.time == key.time &&
             v.ts.writer == key.ts_writer && v.ts.digest == key.digest &&
             v.rec_writer == key.rec_writer;
    });
    if (versions.empty() && !it->second.faulty) index_.erase(it);
  }
  doomed_.clear();
}

const core::WriteRecord* LsmStore::materialize_locked(ItemId item,
                                                      const Version& version) const {
  const VersionKey key{item, version.ts.time, version.ts.writer, version.ts.digest,
                       version.rec_writer};
  if (version.file_no == kMemtableFileNo) {
    const auto it = memtable_.find(key);
    return it == memtable_.end() ? nullptr : &it->second;
  }
  for (const auto& [cached_key, record] : read_cache_) {
    if (cached_key == key) return record.get();
  }
  const auto file = std::lower_bound(
      files_.begin(), files_.end(), version.file_no,
      [](const SstFile& f, std::uint32_t no) { return f.file_no < no; });
  if (file == files_.end() || file->file_no != version.file_no) return nullptr;
  auto record = file->reader->read_record(version.offset, version.frame_len);
  if (!record) {
    // Runtime bit rot inside a frame: treat the version as missing — the
    // caller degrades exactly like a replica that never held it. Queue the
    // version for erasure from the index (done at the next engine call, not
    // here, since the caller may be iterating these versions right now):
    // while it stays indexed the gossip digest keeps advertising a value we
    // cannot serve and apply() rejects the peer's re-sent copy as a
    // duplicate, so anti-entropy would never repair it.
    ++read_error_count_;
    read_errors_.inc();
    doomed_.push_back(key);
    return nullptr;
  }
  read_cache_.emplace_back(key, std::make_unique<core::WriteRecord>(std::move(*record)));
  if (read_cache_.size() > 64) read_cache_.pop_front();
  return read_cache_.back().second.get();
}

const core::WriteRecord* LsmStore::current(ItemId item) const {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  const auto it = index_.find(item);
  if (it == index_.end() || it->second.versions.empty()) return nullptr;
  return materialize_locked(item, it->second.versions.front());
}

std::vector<core::WriteRecord> LsmStore::log(ItemId item) const {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  std::vector<core::WriteRecord> out;
  const auto it = index_.find(item);
  if (it == index_.end()) return out;
  out.reserve(it->second.versions.size());
  for (const Version& version : it->second.versions) {
    if (const core::WriteRecord* record = materialize_locked(item, version)) {
      out.push_back(*record);
    }
  }
  return out;
}

bool LsmStore::flagged_faulty(ItemId item) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(item);
  return it != index_.end() && it->second.faulty;
}

std::vector<ItemId> LsmStore::flagged_items() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ItemId> out;
  for (const auto& [item, idx] : index_) {
    if (idx.faulty) out.push_back(item);
  }
  return out;
}

void LsmStore::flag_faulty(ItemId item) {
  std::lock_guard<std::mutex> lock(mu_);
  ItemIndex& idx = index_[item];
  if (!idx.faulty) flags_dirty_ = true;
  idx.faulty = true;
}

std::vector<core::WriteRecord> LsmStore::group_meta(GroupId group) const {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  std::vector<core::WriteRecord> out;
  for (const auto& [item, idx] : index_) {
    if (idx.versions.empty() || idx.versions.front().group != group) continue;
    if (const core::WriteRecord* record = materialize_locked(item, idx.versions.front())) {
      out.push_back(record->meta_only());
    }
  }
  return out;
}

std::vector<CurrentEntry> LsmStore::current_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  std::vector<CurrentEntry> out;
  out.reserve(index_.size());
  for (const auto& [item, idx] : index_) {
    if (idx.versions.empty()) continue;
    out.push_back({item, idx.versions.front().ts, idx.versions.front().rflags});
  }
  return out;
}

std::vector<core::WriteRecord> LsmStore::records_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  std::vector<core::WriteRecord> out;
  for (const auto& [item, idx] : index_) {
    for (const Version& version : idx.versions) {
      if (const core::WriteRecord* record = materialize_locked(item, version)) {
        out.push_back(*record);
      }
    }
  }
  return out;
}

std::size_t LsmStore::prune_log(ItemId item, const core::Timestamp& ts) {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  const auto it = index_.find(item);
  if (it == index_.end() || it->second.versions.size() <= 1) return 0;
  auto& versions = it->second.versions;
  std::size_t erased = 0;
  for (std::size_t i = versions.size(); i-- > 1;) {
    if (versions[i].ts < ts) {
      drop_version_locked(item, versions[i]);
      versions.erase(versions.begin() + static_cast<std::ptrdiff_t>(i));
      ++erased;
    }
  }
  memtable_bytes_gauge_.set(static_cast<std::int64_t>(memtable_bytes_));
  return erased;
}

std::size_t LsmStore::total_log_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  std::size_t total = 0;
  for (const auto& [item, idx] : index_) {
    if (!idx.versions.empty()) total += idx.versions.size() - 1;
  }
  return total;
}

std::size_t LsmStore::item_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  return index_.size();
}

// --- Durability ------------------------------------------------------------

void LsmStore::note_wal_lsn(std::uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_watermark_ = std::max(wal_watermark_, lsn);
}

std::uint64_t LsmStore::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

std::uint64_t LsmStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  reap_doomed_locked();
  return flush_locked();
}

std::uint64_t LsmStore::flush_locked() {
  if (memtable_.empty() && !flags_dirty_) {
    // Nothing buffered and every flag already lives in some SST; just
    // advance the manifest watermark so already durable WAL positions
    // become truncatable.
    if (wal_watermark_ > durable_lsn_) {
      durable_lsn_ = wal_watermark_;
      write_manifest_locked();
    }
    return durable_lsn_;
  }
  // When only flags are dirty (an equivocation was exposed but the exposing
  // record never entered the memtable), fall through and write a flag-only
  // SST: the flag must be durable in the engine's own files before the WAL
  // positions that produced it become truncatable.

  SstBuilder builder;
  std::map<VersionKey, std::pair<std::uint64_t, std::uint32_t>> locations;
  for (const auto& [key, record] : memtable_) {
    locations.emplace(key, builder.add_record(record));
  }
  // Flag entries ride along on every flush (idempotent and tiny) so the
  // flag set survives even when the exposing conflict predates this file.
  for (const auto& [item, idx] : index_) {
    if (idx.faulty) builder.add_flag(item);
  }

  const std::uint32_t file_no = next_file_no_++;
  const std::uint64_t covered = wal_watermark_;
  builder.finish(file_path(file_no), covered);
  auto reader = SstReader::open(file_path(file_no));
  if (!reader) {
    throw std::runtime_error("lsm: freshly flushed SST failed validation: " +
                             file_path(file_no));
  }
  files_.push_back(SstFile{file_no, 0, std::move(reader)});

  for (auto& [item, idx] : index_) {
    for (Version& version : idx.versions) {
      if (version.file_no != kMemtableFileNo) continue;
      const VersionKey key{item, version.ts.time, version.ts.writer, version.ts.digest,
                           version.rec_writer};
      const auto location = locations.find(key);
      if (location == locations.end()) continue;
      version.file_no = file_no;
      version.offset = location->second.first;
      version.frame_len = location->second.second;
    }
  }
  memtable_.clear();
  memtable_bytes_ = 0;
  flags_dirty_ = false;  // the new SST carries the whole flag set
  durable_lsn_ = covered;
  write_manifest_locked();

  flushes_.inc();
  memtable_bytes_gauge_.set(0);
  sst_files_gauge_.set(static_cast<std::int64_t>(files_.size()));
  maybe_schedule_compaction_locked();
  return durable_lsn_;
}

void LsmStore::write_manifest_locked() {
  Writer body;
  body.u64(next_file_no_);
  body.u64(durable_lsn_);
  body.u32(static_cast<std::uint32_t>(files_.size()));
  for (const SstFile& file : files_) {
    body.u8(file.level);
    body.u32(file.file_no);
  }
  Writer out;
  out.str(kManifestMagic);
  out.u32(kManifestVersion);
  out.bytes(crypto::sha256(body.data()));
  out.bytes(body.data());
  // Same atomic discipline as snapshots: temp, fsync, rename, dir fsync.
  save_snapshot_file(options_.dir + "/" + kManifestName, out.data());
}

void LsmStore::checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path dir(options_.dir);
  const fs::path tmp = dir / (std::string(kCheckpointDirName) + ".tmp");
  const fs::path final_dir = dir / kCheckpointDirName;
  std::error_code ec;
  fs::remove_all(tmp, ec);
  fs::create_directories(tmp);
  // Hardlinks, not copies: the image is O(#files) regardless of data size,
  // and SSTs are immutable so the shared blocks can never diverge.
  if (fs::exists(dir / kManifestName)) {
    fs::copy_file(dir / kManifestName, tmp / kManifestName,
                  fs::copy_options::overwrite_existing);
  }
  for (const SstFile& file : files_) {
    fs::create_hard_link(file_path(file.file_no), tmp / sst_filename(file.file_no));
  }
  fsync_dir(tmp.string());
  fs::remove_all(final_dir, ec);
  fs::rename(tmp, final_dir);
  fsync_dir(options_.dir);
}

// --- Compaction ------------------------------------------------------------

void LsmStore::maybe_schedule_compaction_locked() {
  std::size_t l0 = 0;
  for (const SstFile& file : files_) {
    if (file.level == 0) ++l0;
  }
  if (l0 >= options_.l0_compact_threshold && compact_requested_ <= compact_done_) {
    compact_requested_ = compact_done_ + 1;
    compact_cv_.notify_one();
  }
}

void LsmStore::compact_now() {
  std::unique_lock<std::mutex> lock(mu_);
  // A run may already be in flight, and its live-set capture can predate
  // this call's caller-visible state. Requesting one generation past the
  // outstanding request guarantees the wait covers a capture made at or
  // after now; if the outstanding request had not started yet, the thread
  // reads the bumped generation and a single fresh run satisfies both.
  const std::uint64_t generation =
      compact_requested_ > compact_done_ ? compact_requested_ + 1 : compact_done_ + 1;
  compact_requested_ = generation;
  compact_cv_.notify_one();
  compact_done_cv_.wait(lock, [&] { return stop_ || compact_done_ >= generation; });
}

void LsmStore::compaction_thread() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    compact_cv_.wait(lock, [&] { return stop_ || compact_requested_ > compact_done_; });
    if (stop_) break;
    const std::uint64_t generation = compact_requested_;
    try {
      run_compaction(lock);
    } catch (const std::exception&) {
      // A failed merge leaves the inputs untouched and only abandons temp
      // output; safe to carry on serving from the un-merged files.
    }
    compact_done_ = generation;
    compact_done_cv_.notify_all();
  }
  compact_done_cv_.notify_all();
}

void LsmStore::run_compaction(std::unique_lock<std::mutex>& lock) {
  const auto started = std::chrono::steady_clock::now();
  reap_doomed_locked();

  // Point-in-time capture under the lock: which frames are live (referenced
  // by the index) and which items are flagged. This is the §5.3 retention
  // rule as a compaction filter — versions pruned by stability certificates
  // or trimmed past the log bound are simply no longer referenced, so the
  // merge drops them; equivocation flags are re-emitted so they survive the
  // rewrite.
  std::vector<std::pair<std::uint32_t, const SstReader*>> inputs;
  std::set<std::uint32_t> input_nos;
  for (const SstFile& file : files_) {
    inputs.emplace_back(file.file_no, file.reader.get());
    input_nos.insert(file.file_no);
  }
  if (inputs.empty()) return;
  std::set<std::pair<std::uint32_t, std::uint64_t>> live;
  for (const auto& [item, idx] : index_) {
    for (const Version& version : idx.versions) {
      if (version.file_no != kMemtableFileNo) live.emplace(version.file_no, version.offset);
    }
  }
  std::vector<ItemId> flagged;
  for (const auto& [item, idx] : index_) {
    if (idx.faulty) flagged.push_back(item);
  }
  const std::uint64_t covered = durable_lsn_;

  // Merge outside the lock: applies and flushes keep running. New L0 files
  // appearing meanwhile are not inputs and survive the install untouched;
  // versions the index drops meanwhile become garbage in the output until
  // the next compaction — never incorrect, only un-reclaimed.
  lock.unlock();
  struct Output {
    std::uint32_t file_no;
    SstBuilder builder;
  };
  std::vector<std::uint32_t> finished;
  std::map<std::pair<std::uint32_t, std::uint64_t>,
           std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>>
      remap;
  std::unique_ptr<Output> output;
  std::uint64_t merge_read_errors = 0;
  std::set<std::uint32_t> failed_inputs;  // held a live frame that would not read

  auto next_output = [&] {
    lock.lock();
    const std::uint32_t no = next_file_no_++;
    lock.unlock();
    output = std::make_unique<Output>(Output{no, SstBuilder{}});
    for (const ItemId item : flagged) output->builder.add_flag(item);
    flagged.clear();  // flags go into the first output only
  };
  auto finish_output = [&] {
    output->builder.finish(file_path(output->file_no), covered);
    finished.push_back(output->file_no);
    output.reset();
  };

  try {
    for (const auto& [file_no, reader] : inputs) {
      for (const SstIndexEntry& entry : reader->index()) {
        if (entry.kind != SstEntryKind::kRecord) continue;
        if (!live.contains({file_no, entry.offset})) continue;
        auto record = reader->read_record(entry.offset, entry.frame_len);
        if (!record) {
          // Live frame rotted between flush and merge. Leaving no remap
          // entry makes the install below drop the version from the index
          // (a dangling reference into an unlinked file would otherwise
          // outlive this run), and the input file is quarantined instead of
          // unlinked so a forensic copy survives.
          ++merge_read_errors;
          failed_inputs.insert(file_no);
          continue;
        }
        if (!output) next_output();
        const auto [offset, frame_len] = output->builder.add_record(*record);
        remap[{file_no, entry.offset}] = {output->file_no, offset, frame_len};
        if (output->builder.data_bytes() >= options_.sst_target_bytes) finish_output();
      }
    }
    if (!flagged.empty() && !output) next_output();
    if (output) finish_output();
  } catch (...) {
    for (const std::uint32_t no : finished) {
      std::error_code ec;
      fs::remove(file_path(no), ec);
    }
    lock.lock();
    throw;
  }

  std::vector<SstFile> opened;
  for (const std::uint32_t no : finished) {
    auto reader = SstReader::open(file_path(no));
    if (!reader) {
      for (const std::uint32_t cleanup : finished) {
        std::error_code ec;
        fs::remove(file_path(cleanup), ec);
      }
      lock.lock();
      throw std::runtime_error("lsm: compaction output failed validation");
    }
    opened.push_back(SstFile{no, 1, std::move(reader)});
  }

  // Install under the lock: relocate live versions, swap the file set,
  // commit the manifest, then dispose of the inputs. The read cache is NOT
  // touched: its entries are keyed by full version identity and hold copies,
  // so they stay correct after frames relocate — and clearing it from this
  // thread would free records whose pointers a caller still holds under the
  // engine's pointer-stability contract.
  lock.lock();
  for (auto index_it = index_.begin(); index_it != index_.end();) {
    auto& versions = index_it->second.versions;
    for (std::size_t i = versions.size(); i-- > 0;) {
      Version& version = versions[i];
      if (version.file_no == kMemtableFileNo || !input_nos.contains(version.file_no)) {
        continue;
      }
      const auto it = remap.find({version.file_no, version.offset});
      if (it == remap.end()) {
        // In an input and captured live, yet absent from the outputs: its
        // frame failed to read during the merge. Drop the version so the
        // index never dangles into a removed file and the gossip digest
        // shows the item stale/missing for the peers to repair.
        versions.erase(versions.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      version.file_no = std::get<0>(it->second);
      version.offset = std::get<1>(it->second);
      version.frame_len = std::get<2>(it->second);
    }
    if (versions.empty() && !index_it->second.faulty) {
      index_it = index_.erase(index_it);
    } else {
      ++index_it;
    }
  }
  std::vector<SstFile> kept;
  for (SstFile& file : files_) {
    if (!input_nos.contains(file.file_no)) kept.push_back(std::move(file));
  }
  for (SstFile& file : opened) kept.push_back(std::move(file));
  std::sort(kept.begin(), kept.end(),
            [](const SstFile& a, const SstFile& b) { return a.file_no < b.file_no; });
  files_ = std::move(kept);
  write_manifest_locked();
  for (const std::uint32_t no : input_nos) {
    if (failed_inputs.contains(no)) {
      if (quarantine_file(file_path(no))) {
        ++quarantined_count_;
        quarantined_.inc();
      }
    } else {
      std::error_code ec;
      fs::remove(file_path(no), ec);
    }
  }
  read_error_count_ += merge_read_errors;
  if (merge_read_errors > 0) read_errors_.inc(merge_read_errors);

  compactions_.inc();
  sst_files_gauge_.set(static_cast<std::int64_t>(files_.size()));
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  compaction_lag_us_.observe(static_cast<double>(elapsed.count()));
}

// --- Stats -----------------------------------------------------------------

LsmStore::Stats LsmStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.memtable_bytes = memtable_bytes_;
  stats.memtable_entries = memtable_.size();
  stats.sst_files = files_.size();
  for (const SstFile& file : files_) {
    if (file.level == 0) ++stats.l0_files;
  }
  stats.flushes = flushes_.value();
  stats.compactions = compactions_.value();
  stats.read_errors = read_error_count_;
  stats.quarantined = quarantined_count_;
  return stats;
}

StorageEngine::Pressure LsmStore::pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  Pressure p;
  p.memtable_bytes = memtable_bytes_;
  p.memtable_budget = options_.memtable_budget_bytes;
  std::size_t l0 = 0;
  for (const SstFile& file : files_) {
    if (file.level == 0) ++l0;
  }
  if (l0 > options_.l0_compact_threshold) p.compaction_lag = l0 - options_.l0_compact_threshold;
  return p;
}

}  // namespace securestore::storage::lsm
