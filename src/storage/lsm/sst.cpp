#include "storage/lsm/sst.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <stdexcept>

#include "storage/wal/wal.h"  // fsync_dir
#include "util/crc32.h"

namespace securestore::storage::lsm {

namespace {

void append_frame(Writer& out, const Writer& body) {
  out.u32(static_cast<std::uint32_t>(body.data().size()));
  out.u32(crc32(body.data()));
  out.raw(body.data());
}

void encode_index_entry(Writer& w, const SstIndexEntry& entry) {
  w.u8(static_cast<std::uint8_t>(entry.kind));
  w.u64(entry.item.value);
  w.u64(entry.group.value);
  w.u64(entry.time);
  w.u32(entry.ts_writer.value);
  w.bytes(entry.digest);
  w.u32(entry.rec_writer.value);
  w.u8(entry.rflags);
  w.u64(entry.offset);
  w.u32(entry.frame_len);
}

SstIndexEntry decode_index_entry(Reader& r) {
  SstIndexEntry entry;
  entry.kind = static_cast<SstEntryKind>(r.u8());
  entry.item = ItemId{r.u64()};
  entry.group = GroupId{r.u64()};
  entry.time = r.u64();
  entry.ts_writer = ClientId{r.u32()};
  entry.digest = r.bytes();
  entry.rec_writer = ClientId{r.u32()};
  entry.rflags = r.u8();
  entry.offset = r.u64();
  entry.frame_len = r.u32();
  return entry;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("sst: write failed");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool read_exact_at(int fd, std::uint64_t offset, std::uint8_t* out, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::pread(fd, out, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // short file
    out += n;
    offset += static_cast<std::uint64_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SstBuilder::SstBuilder() {
  buffer_.str(kSstMagic);
  buffer_.u32(kSstVersion);
}

std::pair<std::uint64_t, std::uint32_t> SstBuilder::add_record(
    const core::WriteRecord& record) {
  const std::uint64_t offset = buffer_.data().size();
  Writer body;
  body.u8(static_cast<std::uint8_t>(SstEntryKind::kRecord));
  record.encode(body);
  append_frame(buffer_, body);
  const auto frame_len = static_cast<std::uint32_t>(8 + body.data().size());

  SstIndexEntry entry;
  entry.kind = SstEntryKind::kRecord;
  entry.item = record.item;
  entry.group = record.group;
  entry.time = record.ts.time;
  entry.ts_writer = record.ts.writer;
  entry.digest = record.ts.digest;
  entry.rec_writer = record.writer;
  entry.rflags = record.flags;
  entry.offset = offset;
  entry.frame_len = frame_len;
  index_.push_back(std::move(entry));
  return {offset, frame_len};
}

void SstBuilder::add_flag(ItemId item) {
  const std::uint64_t offset = buffer_.data().size();
  Writer body;
  body.u8(static_cast<std::uint8_t>(SstEntryKind::kFlag));
  body.u64(item.value);
  append_frame(buffer_, body);

  SstIndexEntry entry;
  entry.kind = SstEntryKind::kFlag;
  entry.item = item;
  entry.offset = offset;
  entry.frame_len = static_cast<std::uint32_t>(8 + body.data().size());
  index_.push_back(std::move(entry));
}

void SstBuilder::finish(const std::string& path, std::uint64_t covered_lsn) {
  const std::uint64_t index_offset = buffer_.data().size();
  buffer_.u32(static_cast<std::uint32_t>(index_.size()));
  for (const SstIndexEntry& entry : index_) encode_index_entry(buffer_, entry);
  buffer_.u64(index_offset);
  buffer_.u64(covered_lsn);
  // The file CRC covers everything before itself, footer fields included.
  buffer_.u32(crc32(buffer_.data()));
  buffer_.u64(kSstFooterMagic);

  const std::string temp_path = path + ".tmp";
  const int fd = ::open(temp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("sst: cannot open " + temp_path);
  try {
    write_all(fd, buffer_.data().data(), buffer_.data().size());
    if (::fsync(fd) != 0) throw std::runtime_error("sst: fsync failed for " + temp_path);
  } catch (...) {
    ::close(fd);
    std::remove(temp_path.c_str());
    throw;
  }
  ::close(fd);
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    throw std::runtime_error("sst: rename failed for " + path);
  }
  const auto slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
}

std::unique_ptr<SstReader> SstReader::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  std::unique_ptr<SstReader> reader(new SstReader(path, fd));

  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0 || static_cast<std::size_t>(end) < kSstFooterSize) return nullptr;
  const auto file_size = static_cast<std::uint64_t>(end);

  std::uint8_t footer[kSstFooterSize];
  if (!read_exact_at(fd, file_size - kSstFooterSize, footer, kSstFooterSize)) return nullptr;
  Reader fr(BytesView(footer, kSstFooterSize));
  const std::uint64_t index_offset = fr.u64();
  const std::uint64_t covered_lsn = fr.u64();
  const std::uint32_t expected_crc = fr.u32();
  if (fr.u64() != kSstFooterMagic) return nullptr;
  if (index_offset >= file_size - kSstFooterSize) return nullptr;

  // Whole-file CRC (everything before the CRC field), streamed so the file
  // is never fully resident.
  const std::uint64_t crc_end = file_size - 12;
  std::uint32_t crc = 0;
  Bytes chunk(64 * 1024);
  for (std::uint64_t pos = 0; pos < crc_end;) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(chunk.size(), crc_end - pos));
    if (!read_exact_at(fd, pos, chunk.data(), n)) return nullptr;
    crc = crc32(BytesView(chunk.data(), n), crc);
    pos += n;
  }
  if (crc != expected_crc) return nullptr;

  // Header + index. Both already CRC-covered; decode errors past this point
  // would mean a bug, but treat them as corruption all the same.
  try {
    std::uint8_t header[64];
    const std::size_t header_len =
        static_cast<std::size_t>(std::min<std::uint64_t>(sizeof header, index_offset));
    if (!read_exact_at(fd, 0, header, header_len)) return nullptr;
    Reader hr(BytesView(header, header_len));
    if (hr.str() != kSstMagic) return nullptr;
    if (hr.u32() != kSstVersion) return nullptr;

    const std::size_t index_len = static_cast<std::size_t>(crc_end - 16 - index_offset);
    Bytes index_bytes(index_len);
    if (!read_exact_at(fd, index_offset, index_bytes.data(), index_len)) return nullptr;
    Reader ir(index_bytes);
    const std::uint32_t count = ir.u32();
    reader->index_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      reader->index_.push_back(decode_index_entry(ir));
    }
    ir.expect_end();
  } catch (const DecodeError&) {
    return nullptr;
  }
  reader->covered_lsn_ = covered_lsn;
  return reader;
}

SstReader::~SstReader() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<core::WriteRecord> SstReader::read_record(std::uint64_t offset,
                                                        std::uint32_t frame_len) const {
  if (frame_len < 9) return std::nullopt;
  Bytes frame(frame_len);
  if (!read_exact_at(fd_, offset, frame.data(), frame.size())) return std::nullopt;
  try {
    Reader r(frame);
    const std::uint32_t body_len = r.u32();
    const std::uint32_t body_crc = r.u32();
    if (body_len != frame_len - 8) return std::nullopt;
    const Bytes body = r.raw(body_len);
    if (crc32(body) != body_crc) return std::nullopt;
    Reader br(body);
    if (static_cast<SstEntryKind>(br.u8()) != SstEntryKind::kRecord) return std::nullopt;
    auto record = core::WriteRecord::decode(br);
    br.expect_end();
    return record;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::string sst_filename(std::uint32_t file_no) {
  char name[32];
  std::snprintf(name, sizeof name, "sst-%016x.sst", file_no);
  return name;
}

bool quarantine_file(const std::string& path) {
  return std::rename(path.c_str(), (path + ".corrupt").c_str()) == 0;
}

}  // namespace securestore::storage::lsm
