// Beyond-RAM storage engine: memtable → WAL → SSTables (DESIGN.md §12).
//
// `LsmStore` implements `StorageEngine` with the same externally visible
// semantics as the in-memory `ItemStore` (the equivalence is property
// tested), but keeps only *metadata* resident: a per-item index of version
// keys and frame locations. Values live in the memtable until a flush
// moves them into an fsync'd SSTable; background compaction merges
// SSTables, applying the §5.3 retention rule (versions pruned or
// superseded past the log bound are dropped) and preserving equivocation
// flags as compaction filters.
//
// Durability contract (flush-before-truncate): the engine adds no
// per-write fsync — the WAL is the commit point, exactly as before, and
// SST fsyncs are amortized over whole memtable flushes. The
// server tells the engine the covering WAL LSN after each append
// (`note_wal_lsn`), `flush()` makes everything applied so far durable in
// SSTs + manifest and returns that watermark, and WAL segments are
// truncated only up to `durable_lsn()`. A crash therefore loses at most
// the memtable, whose contents are still in the WAL — whatever the WAL
// fsync policy, because truncation (not fsync) is what's gated.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/engine.h"
#include "storage/lsm/sst.h"

namespace securestore::storage::lsm {

inline constexpr char kManifestName[] = "MANIFEST";
inline constexpr char kManifestMagic[] = "SECURESTORE-LSM-MANIFEST";
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr char kCheckpointDirName[] = "checkpoint";

class LsmStore final : public StorageEngine {
 public:
  struct Options {
    std::string dir;
    std::size_t max_log_entries = 16;
    /// Memtable flushes to a new L0 SSTable when its approximate footprint
    /// crosses this budget.
    std::size_t memtable_budget_bytes = 4u << 20;
    /// Background compaction triggers at this many L0 files.
    std::uint32_t l0_compact_threshold = 4;
    /// Compaction splits its output into files of roughly this size.
    std::size_t sst_target_bytes = 8u << 20;
    /// Shared metrics registry; the store owns a private one when null.
    obs::Registry* registry = nullptr;
    /// Prepended to metric names ("storage.flushes" etc.); multi-server
    /// deployments pass "server.<id>." like the rest of the server metrics.
    std::string metric_prefix;
    /// Appended verbatim to every metric name (e.g. "{shard=2}") so several
    /// replica groups sharing one registry stay distinguishable.
    std::string metric_suffix;
  };

  /// Opens (and recovers) the engine in `options.dir`. Corrupt SSTs or a
  /// corrupt manifest are quarantined (`*.corrupt`); after any quarantine
  /// `durable_lsn()` reports 0 so the server replays every WAL segment it
  /// still has. Throws std::runtime_error only on environmental failure
  /// (directory not creatable).
  explicit LsmStore(Options options);
  ~LsmStore() override;

  // StorageEngine ---------------------------------------------------------
  ApplyResult apply(const core::WriteRecord& record) override;
  const core::WriteRecord* current(ItemId item) const override;
  std::vector<core::WriteRecord> log(ItemId item) const override;
  bool flagged_faulty(ItemId item) const override;
  std::vector<ItemId> flagged_items() const override;
  void flag_faulty(ItemId item) override;
  std::vector<core::WriteRecord> group_meta(GroupId group) const override;
  std::vector<CurrentEntry> current_index() const override;
  std::vector<core::WriteRecord> records_snapshot() const override;
  std::size_t prune_log(ItemId item, const core::Timestamp& ts) override;
  std::size_t total_log_entries() const override;
  std::size_t item_count() const override;

  bool persistent() const override { return true; }
  void note_wal_lsn(std::uint64_t lsn) override;
  std::uint64_t durable_lsn() const override;
  std::uint64_t flush() override;
  void checkpoint() override;

  // Test / tool hooks -----------------------------------------------------
  /// Requests a compaction and blocks until one that captured its live-set
  /// at or after this call has completed (deterministic alternative to
  /// waiting out the background thread). A run already in flight does not
  /// satisfy the wait — it may predate the caller's recent writes.
  void compact_now();

  struct Stats {
    std::size_t memtable_bytes = 0;
    std::size_t memtable_entries = 0;
    std::size_t sst_files = 0;
    std::size_t l0_files = 0;
    std::uint64_t flushes = 0;
    std::uint64_t compactions = 0;
    std::uint64_t read_errors = 0;
    std::uint64_t quarantined = 0;
  };
  Stats stats() const;

  /// Admission-control signal (DESIGN.md §13): memtable fill against its
  /// budget plus how many L0 runs compaction is behind the trigger.
  Pressure pressure() const override;

  const std::string& dir() const { return options_.dir; }

 private:
  /// Full version identity: (item, ts, record writer). Two records with
  /// equal keys are the same write (ItemStore's same_write), so the
  /// memtable and the rebuild dedupe on it.
  struct VersionKey {
    ItemId item{};
    std::uint64_t time = 0;
    ClientId ts_writer{};
    Bytes digest;
    ClientId rec_writer{};

    friend bool operator<(const VersionKey& a, const VersionKey& b) {
      if (a.item != b.item) return a.item < b.item;
      if (a.time != b.time) return a.time < b.time;
      if (a.ts_writer != b.ts_writer) return a.ts_writer < b.ts_writer;
      if (a.digest != b.digest) return a.digest < b.digest;
      return a.rec_writer < b.rec_writer;
    }
    friend bool operator==(const VersionKey& a, const VersionKey& b) {
      return a.item == b.item && a.time == b.time && a.ts_writer == b.ts_writer &&
             a.digest == b.digest && a.rec_writer == b.rec_writer;
    }
  };
  static VersionKey key_of(const core::WriteRecord& record);

  static constexpr std::uint32_t kMemtableFileNo = 0xFFFFFFFFu;

  /// One version in the per-item index: timestamp + where the value frame
  /// lives (memtable sentinel or SST file/offset).
  struct Version {
    core::Timestamp ts;
    ClientId rec_writer{};
    std::uint8_t rflags = 0;
    GroupId group{};
    std::uint32_t file_no = kMemtableFileNo;
    std::uint64_t offset = 0;
    std::uint32_t frame_len = 0;
  };

  struct ItemIndex {
    std::vector<Version> versions;  // [0] = current, rest newest-first
    bool faulty = false;
  };

  struct SstFile {
    std::uint32_t file_no = 0;
    std::uint8_t level = 0;
    std::unique_ptr<SstReader> reader;
  };

  obs::Registry& registry() const;

  // All `_locked` members require `mu_`.
  void recover_locked();
  void load_fallback_locked();
  std::uint64_t flush_locked();
  void write_manifest_locked();
  void drop_version_locked(ItemId item, const Version& version);
  const core::WriteRecord* materialize_locked(ItemId item, const Version& version) const;
  void reap_doomed_locked() const;
  std::string file_path(std::uint32_t file_no) const;
  void rebuild_index_locked();
  void maybe_schedule_compaction_locked();
  void compaction_thread();
  void run_compaction(std::unique_lock<std::mutex>& lock);

  Options options_;

  mutable std::mutex mu_;
  /// mutable: logically-const reads may discover frame rot and lazily drop
  /// the affected versions (see `doomed_`).
  mutable std::unordered_map<ItemId, ItemIndex> index_;
  std::map<VersionKey, core::WriteRecord> memtable_;
  std::size_t memtable_bytes_ = 0;
  std::vector<SstFile> files_;  // ascending file_no
  std::uint32_t next_file_no_ = 1;
  std::uint64_t wal_watermark_ = 0;  // covers everything applied so far
  std::uint64_t durable_lsn_ = 0;    // covered by fsync'd SSTs + manifest
  /// Set when an equivocation flag appears that no SST carries yet; forces
  /// the next flush to write a (possibly flag-only) SST even when the
  /// memtable is empty, so flags are durable in the engine's own files.
  bool flags_dirty_ = false;

  /// Bounded materialization cache backing `current()`'s pointer contract:
  /// entries stay alive across at least one further call, never evicting
  /// the most recently returned record. Only caller-thread engine calls
  /// (all under `mu_`) may mutate it — never the compactor, whose clears
  /// would invalidate a pointer a caller still holds. Entries are keyed by
  /// full version identity, so they stay correct when compaction relocates
  /// frames.
  mutable std::deque<std::pair<VersionKey, std::unique_ptr<core::WriteRecord>>> read_cache_;

  /// Versions whose SST frame failed its CRC at read time. They are erased
  /// from `index_` at the start of the next engine call (`reap_doomed_locked`)
  /// — not immediately, because the discovery happens mid-iteration — so the
  /// replica stops advertising values it cannot serve (the gossip digest
  /// then shows the item stale/missing and peers re-send it) and a re-sent
  /// record is no longer rejected as a duplicate.
  mutable std::vector<VersionKey> doomed_;

  // Compaction thread handshake.
  std::thread compactor_;
  std::condition_variable compact_cv_;
  std::condition_variable compact_done_cv_;
  std::uint64_t compact_requested_ = 0;  // generation counters
  std::uint64_t compact_done_ = 0;
  bool stop_ = false;

  // Metrics (handles resolved once; see obs::Registry).
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Gauge& memtable_bytes_gauge_;
  obs::Counter& flushes_;
  obs::Counter& compactions_;
  obs::Gauge& sst_files_gauge_;
  obs::Histogram& compaction_lag_us_;
  obs::Counter& read_errors_;
  obs::Counter& quarantined_;
  std::uint64_t quarantined_count_ = 0;
  mutable std::uint64_t read_error_count_ = 0;
};

}  // namespace securestore::storage::lsm
