// Pluggable versioned-store engines (DESIGN.md §12).
//
// The server's item store was a concrete in-memory class from the seed
// through PR 7; a production store must also hold datasets larger than RAM
// (ROADMAP item 3). `StorageEngine` is the seam: the paper-visible
// semantics — timestamp ordering, §5.3 recent-writes logs, equivocation
// flags, stability-certificate pruning — are the interface, and the
// substrate (RAM hash map vs. memtable + SSTables) is the implementation.
// Servers pick the engine via `core::StoreConfig::engine`; everything
// above the engine (quorum handlers, gossip, WAL, snapshots) is
// engine-agnostic.
//
// Pointer contract: `current()` returns a pointer that stays valid only
// until the next call into the engine (const or not). The in-memory
// engine happens to hand out longer-lived pointers; disk-backed engines
// materialize through a bounded record cache. Callers must copy before
// calling back in.
#pragma once

#include <cstdint>
#include <vector>

#include "core/record.h"
#include "core/timestamp.h"
#include "util/ids.h"

namespace securestore::storage {

enum class ApplyResult {
  kStoredNewer,    // became the current value
  kLogged,         // older than current but retained in the log
  kDuplicate,      // already have this exact write
  kEquivocation,   // exposes the writer as faulty; item flagged
};

/// One row of the engine's current-version index: enough for gossip
/// digests and rebalance sweeps without materializing any value.
struct CurrentEntry {
  ItemId item{};
  core::Timestamp ts;
  std::uint8_t flags = 0;  // RecordFlags of the current record
};

class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// Applies a (already signature-verified) record. Ordering is by the
  /// record timestamp; never downgrades the current value.
  virtual ApplyResult apply(const core::WriteRecord& record) = 0;

  /// The current record for an item, if any. See the pointer contract in
  /// the header comment.
  virtual const core::WriteRecord* current(ItemId item) const = 0;

  /// The item's recent-writes log, newest first, current value included —
  /// what a §5.3 LogRead returns.
  virtual std::vector<core::WriteRecord> log(ItemId item) const = 0;

  /// True once equivocation has been observed for the item's writer.
  virtual bool flagged_faulty(ItemId item) const = 0;

  /// Items whose writer was caught equivocating. Persisted explicitly: the
  /// exposing record is never stored, so the flag cannot be re-derived
  /// from replayed records alone.
  virtual std::vector<ItemId> flagged_items() const = 0;

  /// Restores a persisted equivocation flag (snapshot restore).
  virtual void flag_faulty(ItemId item) = 0;

  /// Items of a group with their current meta records (for context
  /// reconstruction, §5.1).
  virtual std::vector<core::WriteRecord> group_meta(GroupId group) const = 0;

  /// One entry per item with a current record — (item, ts, flags) only, so
  /// gossip digests and rebalance sweeps stay O(metadata) even when values
  /// live on disk.
  virtual std::vector<CurrentEntry> current_index() const = 0;

  /// Every record held — current values and log history — materialized by
  /// value. O(data): snapshot serialization for in-memory engines and
  /// tests only; persistent engines checkpoint through their own files.
  virtual std::vector<core::WriteRecord> records_snapshot() const = 0;

  /// Prunes log entries strictly older than `ts` (stability certificate
  /// handling, §5.3). Returns how many entries were erased.
  virtual std::size_t prune_log(ItemId item, const core::Timestamp& ts) = 0;

  /// Total log entries across items (bench E7 measures retention).
  virtual std::size_t total_log_entries() const = 0;

  virtual std::size_t item_count() const = 0;

  /// Live pressure signals for admission control (DESIGN.md §13). Zeros
  /// mean "no pressure"; the in-memory engine never pushes back, while the
  /// LSM engine reports memtable bytes against its budget and how many L0
  /// runs compaction is behind.
  struct Pressure {
    std::uint64_t memtable_bytes = 0;   // bytes buffered awaiting flush
    std::uint64_t memtable_budget = 0;  // flush threshold (0 = unbounded)
    std::uint64_t compaction_lag = 0;   // L0 runs beyond the compact trigger
  };
  virtual Pressure pressure() const { return {}; }

  // --- Durability hooks (no-ops for in-memory engines) -------------------

  /// True when the engine keeps its records durable in its own files; the
  /// server then excludes records from the snapshot blob and gates WAL
  /// truncation on `flush()` instead of the blob write.
  virtual bool persistent() const { return false; }

  /// Tells the engine the WAL position covering everything applied so far;
  /// the server calls this after each record append. A persistent engine's
  /// `flush()` stamps this watermark into its manifest.
  virtual void note_wal_lsn(std::uint64_t /*lsn*/) {}

  /// Highest WAL LSN whose effects are durable in the engine's own
  /// storage. WAL segments at or below it are safe to drop.
  virtual std::uint64_t durable_lsn() const { return 0; }

  /// Makes everything applied so far durable in the engine's own storage
  /// (memtable → fsync'd SSTable + manifest). Returns the new
  /// durable_lsn(). Always fsyncs, whatever the WAL fsync policy — WAL
  /// segment truncation is gated on this value (DESIGN.md §12).
  virtual std::uint64_t flush() { return 0; }

  /// Near-instant point-in-time image (manifest copy + SST hardlinks) for
  /// persistent engines; no-op otherwise.
  virtual void checkpoint() {}
};

}  // namespace securestore::storage
