#include "storage/wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>

#include "util/crc32.h"
#include "util/serial.h"

namespace securestore::storage {

namespace {

constexpr char kSegmentMagic[] = "SECURESTORE-WAL";
constexpr std::uint32_t kSegmentVersion = 1;
constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";

// Frame: u32 len · u32 crc · body{ u8 type · u64 lsn · payload }.
constexpr std::size_t kFrameHeaderBytes = 8;
constexpr std::size_t kFrameBodyMinBytes = 9;
// A length prefix beyond this is treated as corruption, not an allocation.
constexpr std::size_t kMaxFrameBody = 64u << 20;

void write_all(int fd, BytesView data) {
  const std::uint8_t* cursor = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, cursor, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("wal: write failed: ") + std::strerror(errno));
    }
    cursor += n;
    left -= static_cast<std::size_t>(n);
  }
}

Bytes read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw std::runtime_error("wal: cannot open " + path);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  Bytes data(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t read = std::fread(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (read != data.size()) throw std::runtime_error("wal: short read from " + path);
  return data;
}

std::string segment_file_name(std::uint64_t first_lsn) {
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(first_lsn));
  return std::string(kSegmentPrefix) + hex + kSegmentSuffix;
}

/// Parses `wal-<16 hex>.log` back to its first LSN; nullopt for other names.
std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  const std::string prefix(kSegmentPrefix);
  const std::string suffix(kSegmentSuffix);
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string hex = name.substr(prefix.size(), 16);
  if (hex.find_first_not_of("0123456789abcdef") != std::string::npos) return std::nullopt;
  return std::strtoull(hex.c_str(), nullptr, 16);
}

Bytes segment_header(std::uint64_t first_lsn) {
  Writer w;
  w.str(kSegmentMagic);
  w.u32(kSegmentVersion);
  w.u64(first_lsn);
  return w.take();
}

}  // namespace

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

WriteAheadLog::WriteAheadLog(WalOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) throw std::runtime_error("wal: empty directory");
  std::filesystem::create_directories(options_.dir);
  recover_existing();
  if (segments_.empty()) {
    open_active(next_lsn_);
  } else {
    const Segment& active = segments_.back();
    fd_ = ::open(active.path.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0) throw std::runtime_error("wal: cannot reopen " + active.path);
    active_size_ = static_cast<std::size_t>(std::filesystem::file_size(active.path));
  }
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    if (dirty_ && options_.fsync != FsyncPolicy::kNever) {
      ::fsync(fd_);
      ++stats_.fsyncs;
    }
    ::close(fd_);
  }
}

void WriteAheadLog::recover_existing() {
  std::vector<Segment> found;
  for (const auto& entry : std::filesystem::directory_iterator(options_.dir)) {
    if (!entry.is_regular_file()) continue;
    const auto first_lsn = parse_segment_name(entry.path().filename().string());
    if (first_lsn.has_value()) found.push_back({*first_lsn, entry.path().string()});
  }
  std::sort(found.begin(), found.end(),
            [](const Segment& a, const Segment& b) { return a.first_lsn < b.first_lsn; });

  bool corrupted = false;
  for (const Segment& segment : found) {
    if (corrupted || segment.first_lsn < next_lsn_) {
      // Past the first corruption (or overlapping LSNs — which only a
      // damaged directory produces): unreachable history, drop it.
      std::error_code ec;
      const auto size = std::filesystem::file_size(segment.path, ec);
      stats_.truncated_tail_bytes += ec ? 0 : static_cast<std::uint64_t>(size);
      std::filesystem::remove(segment.path, ec);
      corrupted = true;
      continue;
    }
    const Bytes data = read_file(segment.path);
    const std::size_t good = scan_segment(segment.first_lsn, data);
    if (good == 0) {
      // Header unreadable: the whole file is garbage.
      stats_.truncated_tail_bytes += data.size();
      std::error_code ec;
      std::filesystem::remove(segment.path, ec);
      corrupted = true;
      continue;
    }
    if (good < data.size()) {
      // Torn or corrupt tail: keep the valid prefix, drop the rest.
      stats_.truncated_tail_bytes += data.size() - good;
      std::filesystem::resize_file(segment.path, good);
      corrupted = true;
    }
    segments_.push_back(segment);
  }
  if (corrupted) fsync_dir(options_.dir);
}

std::size_t WriteAheadLog::scan_segment(std::uint64_t expected_first_lsn, BytesView data) {
  Reader r(data);
  try {
    if (r.str() != kSegmentMagic) return 0;
    if (r.u32() != kSegmentVersion) return 0;
    if (r.u64() != expected_first_lsn) return 0;
  } catch (const DecodeError&) {
    return 0;
  }
  std::size_t good = data.size() - r.remaining();
  while (r.remaining() >= kFrameHeaderBytes) {
    const std::uint32_t len = r.u32();
    if (len < kFrameBodyMinBytes || len > kMaxFrameBody) break;
    if (r.remaining() < 4 + static_cast<std::size_t>(len)) break;  // torn frame
    const std::uint32_t crc = r.u32();
    const Bytes body = r.raw(len);
    if (crc32(body) != crc) break;
    Reader br(body);
    br.u8();  // entry type: interpreted by the replay consumer
    const std::uint64_t lsn = br.u64();
    // LSNs must be monotone across the whole log. Gaps are legal (a
    // snapshot restore may reserve_through() ahead of a fresh WAL);
    // regressions mean corruption.
    if (lsn < next_lsn_) break;
    next_lsn_ = lsn + 1;
    good = data.size() - r.remaining();
  }
  return good;
}

std::uint64_t WriteAheadLog::append(WalEntryType type, BytesView payload) {
  Writer body;
  body.u8(static_cast<std::uint8_t>(type));
  body.u64(next_lsn_);
  body.raw(payload);

  Writer frame;
  frame.u32(static_cast<std::uint32_t>(body.data().size()));
  frame.u32(crc32(body.data()));
  frame.raw(body.data());

  write_all(fd_, frame.data());
  active_size_ += frame.data().size();
  ++stats_.appends;
  stats_.bytes_appended += frame.data().size();
  const std::uint64_t lsn = next_lsn_++;

  if (options_.fsync == FsyncPolicy::kAlways) {
    ::fsync(fd_);
    ++stats_.fsyncs;
  } else {
    dirty_ = true;
  }
  if (active_size_ >= options_.segment_bytes) rotate();
  return lsn;
}

void WriteAheadLog::sync() {
  if (!dirty_ || fd_ < 0 || options_.fsync == FsyncPolicy::kNever) return;
  ::fsync(fd_);
  ++stats_.fsyncs;
  dirty_ = false;
}

void WriteAheadLog::reserve_through(std::uint64_t lsn) {
  if (next_lsn_ <= lsn) next_lsn_ = lsn + 1;
}

void WriteAheadLog::replay(std::uint64_t after_lsn, const ReplayFn& fn) {
  for (const Segment& segment : segments_) {
    const Bytes data = read_file(segment.path);
    Reader r(data);
    try {
      r.str();
      r.u32();
      r.u64();
    } catch (const DecodeError&) {
      continue;  // recovery validated headers; an unreadable one is empty
    }
    while (r.remaining() >= kFrameHeaderBytes) {
      const std::uint32_t len = r.u32();
      if (len < kFrameBodyMinBytes || len > kMaxFrameBody) break;
      if (r.remaining() < 4 + static_cast<std::size_t>(len)) break;
      const std::uint32_t crc = r.u32();
      const Bytes body = r.raw(len);
      if (crc32(body) != crc) break;
      Reader br(body);
      const auto type = static_cast<WalEntryType>(br.u8());
      const std::uint64_t lsn = br.u64();
      if (lsn <= after_lsn) continue;
      ++stats_.replayed_entries;
      fn(lsn, type, BytesView(body.data() + kFrameBodyMinBytes, body.size() - kFrameBodyMinBytes));
    }
  }
}

std::size_t WriteAheadLog::truncate_up_to(std::uint64_t lsn) {
  std::size_t removed = 0;
  // segments_[i] covers [first_lsn_i, first_lsn_{i+1} - 1]: removable once
  // a durable snapshot covers everything before the next segment starts.
  while (segments_.size() > 1 && segments_[1].first_lsn <= lsn + 1) {
    std::error_code ec;
    std::filesystem::remove(segments_.front().path, ec);
    segments_.erase(segments_.begin());
    ++removed;
  }
  if (removed > 0) {
    stats_.segments_removed += removed;
    if (options_.fsync != FsyncPolicy::kNever) {
      fsync_dir(options_.dir);
      ++stats_.fsyncs;
    }
  }
  return removed;
}

void WriteAheadLog::open_active(std::uint64_t first_lsn) {
  const std::string path = options_.dir + "/" + segment_file_name(first_lsn);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd_ < 0) throw std::runtime_error("wal: cannot create " + path);
  const Bytes header = segment_header(first_lsn);
  write_all(fd_, header);
  active_size_ = header.size();
  dirty_ = false;
  if (options_.fsync != FsyncPolicy::kNever) {
    ::fsync(fd_);
    fsync_dir(options_.dir);
    stats_.fsyncs += 2;
  }
  segments_.push_back({first_lsn, path});
}

void WriteAheadLog::rotate() {
  if (dirty_ && options_.fsync != FsyncPolicy::kNever) {
    ::fsync(fd_);
    ++stats_.fsyncs;
    dirty_ = false;
  }
  ::close(fd_);
  ++stats_.rotations;
  open_active(next_lsn_);
}

}  // namespace securestore::storage
