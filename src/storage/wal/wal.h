// Append-only, segmented write-ahead log.
//
// A server's snapshot is periodic, so every accepted (and acked) mutation
// between two snapshots would vanish on a crash — silently shrinking the
// b+1/2b+1 quorums honest clients relied on (§5.2–5.3). The WAL closes that
// window: each accepted write/context is appended as a CRC-protected,
// length-prefixed frame *before* the ack, and recovery replays
// `snapshot + WAL tail` through the normal apply paths so every invariant
// (ordering, equivocation flags, log bounds, causal holds) is
// re-established rather than trusted from disk.
//
// On-disk layout (PROTOCOL.md §9): a directory of segment files named
// `wal-<first-lsn, 16 hex digits>.log`. Each segment starts with a header
// (magic, version, first LSN) followed by frames:
//
//   u32 len · u32 crc32(body) · body{ u8 type · u64 lsn · payload }
//
// A torn or corrupt tail frame fails its CRC (or its LSN regresses) and is
// truncated at recovery, never fatal; segments beyond the first corruption
// are unreachable history and are removed. Entirely-superseded segments are
// deleted once a durable snapshot covers their last LSN.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace securestore::storage {

enum class FsyncPolicy : std::uint8_t {
  kAlways,    // fsync after every append: each acked write is durable
  kInterval,  // group commit: the owner calls sync() on a timer
  kNever,     // OS page cache only (survives process death, not power loss)
};

enum class WalEntryType : std::uint8_t {
  kWrite = 1,    // accepted WriteRecord (visible or parked in the hold queue)
  kContext = 2,  // accepted StoredContext
  kRelease = 3,  // a held write that became visible
};

struct WalStats {
  std::uint64_t appends = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t fsyncs = 0;            // data-file and directory fsyncs
  std::uint64_t rotations = 0;         // segments closed because of size
  std::uint64_t segments_removed = 0;  // dropped by snapshot truncation
  std::uint64_t replayed_entries = 0;  // entries handed to replay callbacks
  std::uint64_t truncated_tail_bytes = 0;  // torn/corrupt bytes dropped at recovery
};

struct WalOptions {
  std::string dir;  // created if missing
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  std::size_t segment_bytes = 1u << 20;  // rotate once the active segment reaches this
};

class WriteAheadLog {
 public:
  /// Opens (creating the directory if needed), scans existing segments,
  /// truncates any torn/corrupt tail, and positions for append after the
  /// last valid entry. Throws std::runtime_error on I/O failure.
  explicit WriteAheadLog(WalOptions options);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one entry; under FsyncPolicy::kAlways it is durable on return.
  /// Returns the entry's LSN (LSNs start at 1 and only grow).
  std::uint64_t append(WalEntryType type, BytesView payload);

  /// Makes all appended entries durable (group-commit tick). No-op under
  /// kNever or when nothing is pending.
  void sync();

  /// The LSN of the newest entry ever appended (0 = empty log).
  std::uint64_t last_lsn() const { return next_lsn_ - 1; }

  /// Guarantees future LSNs exceed `lsn` — called after a snapshot restore
  /// so appends against a fresh/behind WAL can never collide with LSNs the
  /// snapshot already covers.
  void reserve_through(std::uint64_t lsn);

  using ReplayFn =
      std::function<void(std::uint64_t lsn, WalEntryType type, BytesView payload)>;
  /// Replays every entry with lsn > after_lsn, oldest first.
  void replay(std::uint64_t after_lsn, const ReplayFn& fn);

  /// Removes segments whose every entry has lsn <= `lsn` (i.e. is covered
  /// by a durable snapshot). The active segment always survives. Returns
  /// the number of segment files deleted.
  std::size_t truncate_up_to(std::uint64_t lsn);

  const WalStats& stats() const { return stats_; }
  std::size_t segment_count() const { return segments_.size(); }
  const std::string& dir() const { return options_.dir; }

 private:
  struct Segment {
    std::uint64_t first_lsn = 0;
    std::string path;
  };

  void recover_existing();
  /// Validates one segment image; returns the byte length of the valid
  /// prefix (0 = even the header is bad) and advances next_lsn_ past every
  /// valid frame.
  std::size_t scan_segment(std::uint64_t expected_first_lsn, BytesView data);
  void open_active(std::uint64_t first_lsn);
  void rotate();

  WalOptions options_;
  std::vector<Segment> segments_;  // ordered by first_lsn; back() is active
  int fd_ = -1;
  std::uint64_t next_lsn_ = 1;
  std::size_t active_size_ = 0;
  bool dirty_ = false;  // appended-but-not-fsynced bytes pending
  WalStats stats_;
};

/// fsyncs a directory so creates/renames/unlinks inside it are durable.
/// Best effort: silently returns if the directory refuses to open.
void fsync_dir(const std::string& dir);

}  // namespace securestore::storage
