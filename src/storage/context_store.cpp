#include "storage/context_store.h"

namespace securestore::storage {

bool ContextStore::apply(const core::StoredContext& stored) {
  const Key key = make_key(stored.owner, stored.context.group());
  const auto it = contexts_.find(key);
  if (it != contexts_.end() && it->second.context.dominates(stored.context)) {
    return false;  // replay or stale: keep what we have
  }
  contexts_[key] = stored;
  return true;
}

const core::StoredContext* ContextStore::get(ClientId owner, GroupId group) const {
  const auto it = contexts_.find(make_key(owner, group));
  return it != contexts_.end() ? &it->second : nullptr;
}

std::vector<const core::StoredContext*> ContextStore::all() const {
  std::vector<const core::StoredContext*> out;
  out.reserve(contexts_.size());
  for (const auto& [key, stored] : contexts_) out.push_back(&stored);
  return out;
}

}  // namespace securestore::storage
