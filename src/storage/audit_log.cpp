#include "storage/audit_log.h"

#include <algorithm>
#include <map>

#include "crypto/sha2.h"
#include "util/serial.h"

namespace securestore::storage {

void AuditEntry::encode(Writer& w) const {
  w.u64(sequence);
  w.u64(accepted_at);
  w.u64(item.value);
  ts.encode(w);
  w.u32(writer.value);
  w.bytes(record_digest);
  w.bytes(chain_hash);
}

AuditEntry AuditEntry::decode(Reader& r) {
  AuditEntry entry;
  entry.sequence = r.u64();
  entry.accepted_at = r.u64();
  entry.item = ItemId{r.u64()};
  entry.ts = core::Timestamp::decode(r);
  entry.writer = ClientId{r.u32()};
  entry.record_digest = r.bytes();
  entry.chain_hash = r.bytes();
  return entry;
}

Bytes AuditLog::genesis() { return crypto::sha256(to_bytes("securestore.audit.genesis.v1")); }

AuditLog::AuditLog() : head_(genesis()) {}

Bytes AuditLog::link(BytesView previous, const AuditEntry& entry) {
  Writer w;
  w.raw(previous);
  w.u64(entry.sequence);
  w.u64(entry.accepted_at);
  w.u64(entry.item.value);
  entry.ts.encode(w);
  w.u32(entry.writer.value);
  w.bytes(entry.record_digest);
  return crypto::sha256(w.data());
}

const Bytes& AuditLog::append(const core::WriteRecord& record, SimTime accepted_at) {
  AuditEntry entry;
  entry.sequence = entries_.size();
  entry.accepted_at = accepted_at;
  entry.item = record.item;
  entry.ts = record.ts;
  entry.writer = record.writer;
  entry.record_digest = crypto::sha256(record.signed_payload());
  entry.chain_hash = link(head_, entry);
  head_ = entry.chain_hash;
  entries_.push_back(std::move(entry));
  return head_;
}

Bytes AuditLog::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const AuditEntry& entry : entries_) entry.encode(w);
  return w.take();
}

AuditLog AuditLog::deserialize(BytesView data) {
  Reader r(data);
  AuditLog log;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    log.entries_.push_back(AuditEntry::decode(r));
  }
  r.expect_end();
  if (!log.entries_.empty()) log.head_ = log.entries_.back().chain_hash;
  return log;
}

bool AuditLog::verify() const {
  Bytes previous = genesis();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const AuditEntry& entry = entries_[i];
    if (entry.sequence != i) return false;
    if (link(previous, entry) != entry.chain_hash) return false;
    previous = entry.chain_hash;
  }
  return previous == head_;
}

bool AuditLog::contains(BytesView record_digest) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const AuditEntry& entry) {
    return entry.record_digest.size() == record_digest.size() &&
           std::equal(entry.record_digest.begin(), entry.record_digest.end(),
                      record_digest.begin());
  });
}

std::vector<AuditFinding> cross_audit(
    const std::vector<std::pair<NodeId, const AuditLog*>>& logs,
    std::size_t tolerate_tail) {
  std::vector<AuditFinding> findings;

  // 1. Per-server chain integrity.
  for (const auto& [server, log] : logs) {
    if (!log->verify()) {
      findings.push_back(AuditFinding{AuditFinding::Kind::kBrokenChain, server, {},
                                      "hash chain fails verification"});
    }
  }

  // 2. Suppression, per item: establish the newest stable write any
  // verified log recorded, then require every log to have caught up to it.
  struct Newest {
    core::Timestamp ts;
    Bytes digest;
  };
  std::map<std::uint64_t, Newest> baseline;  // item -> newest stable write
  for (const auto& [server, log] : logs) {
    if (!log->verify()) continue;
    const std::size_t count = log->entries().size();
    const std::size_t stable = count > tolerate_tail ? count - tolerate_tail : 0;
    for (std::size_t i = 0; i < stable; ++i) {
      const AuditEntry& entry = log->entries()[i];
      auto [it, inserted] =
          baseline.try_emplace(entry.item.value, Newest{entry.ts, entry.record_digest});
      if (!inserted && it->second.ts < entry.ts) {
        it->second = Newest{entry.ts, entry.record_digest};
      }
    }
  }

  for (const auto& [server, log] : logs) {
    if (!log->verify()) continue;  // already reported
    for (const auto& [item, newest] : baseline) {
      const bool caught_up = std::any_of(
          log->entries().begin(), log->entries().end(), [&](const AuditEntry& entry) {
            return entry.item.value == item && !(entry.ts < newest.ts);
          });
      if (!caught_up) {
        findings.push_back(AuditFinding{AuditFinding::Kind::kMissingWrite, server,
                                        newest.digest,
                                        "item's newest write is absent from this log"});
      }
    }
  }
  return findings;
}

}  // namespace securestore::storage
