#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "crypto/sha2.h"
#include "storage/wal/wal.h"
#include "util/serial.h"

namespace securestore::storage {

namespace {

constexpr char kMagic[] = "SECURESTORE-SNAPSHOT";
// v2 appends the equivocation-flag list: the record exposing a writer is
// never stored, so the flag cannot be re-derived from replayed records.
constexpr std::uint32_t kVersion = 2;

}  // namespace

Bytes make_snapshot(const StorageEngine& items, const ContextStore& contexts,
                    bool include_records) {
  Writer body;
  // Canonical order (item, newest first, then writer) so two stores with
  // equal contents produce byte-identical snapshots.
  auto records =
      include_records ? items.records_snapshot() : std::vector<core::WriteRecord>{};
  std::sort(records.begin(), records.end(),
            [](const core::WriteRecord& a, const core::WriteRecord& b) {
              if (a.item != b.item) return a.item < b.item;
              if (a.ts != b.ts) return b.ts < a.ts;
              return a.value_digest < b.value_digest;
            });
  body.u32(static_cast<std::uint32_t>(records.size()));
  for (const core::WriteRecord& record : records) record.encode(body);

  const auto stored_contexts = contexts.all();
  body.u32(static_cast<std::uint32_t>(stored_contexts.size()));
  for (const core::StoredContext* stored : stored_contexts) stored->encode(body);

  auto flagged = items.flagged_items();
  std::sort(flagged.begin(), flagged.end());
  body.u32(static_cast<std::uint32_t>(flagged.size()));
  for (const ItemId item : flagged) body.u64(item.value);

  Writer out;
  out.str(kMagic);
  out.u32(kVersion);
  out.bytes(crypto::sha256(body.data()));
  out.bytes(body.data());
  return out.take();
}

void restore_snapshot(BytesView snapshot, StorageEngine& items, ContextStore& contexts) {
  Reader r(snapshot);
  if (r.str() != kMagic) throw DecodeError("snapshot: bad magic");
  if (r.u32() != kVersion) throw DecodeError("snapshot: unsupported version");
  const Bytes checksum = r.bytes();
  const Bytes body = r.bytes();
  r.expect_end();
  if (crypto::sha256(body) != checksum) throw DecodeError("snapshot: checksum mismatch");

  Reader br(body);
  const std::uint32_t record_count = br.u32();
  for (std::uint32_t i = 0; i < record_count; ++i) {
    items.apply(core::WriteRecord::decode(br));
  }
  const std::uint32_t context_count = br.u32();
  for (std::uint32_t i = 0; i < context_count; ++i) {
    contexts.apply(core::StoredContext::decode(br));
  }
  const std::uint32_t flagged_count = br.u32();
  for (std::uint32_t i = 0; i < flagged_count; ++i) {
    items.flag_faulty(ItemId{br.u64()});
  }
  br.expect_end();
}

void save_snapshot_file(const std::string& path, BytesView snapshot) {
  const std::string temp_path = path + ".tmp";
  const int fd = ::open(temp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("snapshot: cannot open " + temp_path);

  bool ok = true;
  const std::uint8_t* cursor = snapshot.data();
  std::size_t left = snapshot.size();
  while (ok && left > 0) {
    const ssize_t n = ::write(fd, cursor, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    cursor += n;
    left -= static_cast<std::size_t>(n);
  }
  // fsync BEFORE the rename: otherwise the rename can become durable while
  // the data has not, leaving a truncated snapshot after a crash — which
  // restore would then treat as corruption.
  if (ok && ::fsync(fd) != 0) ok = false;
  ::close(fd);
  if (!ok) {
    std::remove(temp_path.c_str());
    throw std::runtime_error("snapshot: write/sync failed for " + temp_path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    throw std::runtime_error("snapshot: rename failed for " + path);
  }
  // And the directory, so the rename itself survives a crash.
  const auto slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
}

Bytes load_snapshot_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) throw std::runtime_error("snapshot: cannot open " + path);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  Bytes data(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t read = std::fread(data.data(), 1, data.size(), file);
  std::fclose(file);
  if (read != data.size()) throw std::runtime_error("snapshot: short read from " + path);
  return data;
}

}  // namespace securestore::storage
