// Causal hold queue (§5.3).
//
// Defense against the spurious-context denial-of-service attack: "a
// non-malicious server should start reporting a write to any requesting
// client only after the causally preceding writes, as reflected in the
// accompanying context, arrive at the server". Writes whose dependencies
// are not yet locally satisfied wait here; each new arrival can release
// held writes transitively.
//
// A write forged with arbitrarily-high context entries therefore never
// becomes visible, and honest clients that would have read it are not
// poisoned into chasing timestamps that correspond to no real write.
#pragma once

#include <functional>
#include <vector>

#include "core/record.h"
#include "util/ids.h"

namespace securestore::storage {

class HoldQueue {
 public:
  /// Predicate: does the local store hold a record for `item` at least as
  /// new as `ts`?
  using HaveFn = std::function<bool(ItemId item, const core::Timestamp& ts)>;

  /// True iff every dependency in the record's writer context (other than
  /// the entry for the item itself) is satisfied locally.
  static bool dependencies_met(const core::WriteRecord& record, const HaveFn& have);

  /// Parks a record until its dependencies are met.
  void hold(core::WriteRecord record);

  /// Re-evaluates all held records; returns those whose dependencies are
  /// now met (removed from the queue). Call after every store mutation;
  /// the caller applies the released records, then calls again until empty
  /// (transitive release).
  std::vector<core::WriteRecord> release(const HaveFn& have);

  std::size_t size() const { return held_.size(); }
  bool empty() const { return held_.empty(); }

 private:
  std::vector<core::WriteRecord> held_;
};

}  // namespace securestore::storage
