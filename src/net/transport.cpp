#include "net/transport.h"

#include <memory>

namespace securestore::net {

void Transport::register_node_batched(NodeId node, BatchDeliverFn deliver) {
  // Adapter for transports without native batching: each message arrives
  // as a batch of one. Semantics (ordering, drop accounting) are exactly
  // the per-message path's.
  auto shared = std::make_shared<BatchDeliverFn>(std::move(deliver));
  register_node(node, [shared](NodeId from, BytesView payload) {
    std::vector<Delivery> one;
    one.push_back(Delivery{from, Bytes(payload.begin(), payload.end())});
    (*shared)(one);
  });
}

obs::Registry& Transport::registry() {
  // Fallback for Transport implementations that do not carry their own
  // registry: one per process. Deployment-scoped metrics come from the
  // concrete transports, which override this.
  static obs::Registry fallback;
  return fallback;
}

obs::EventLog& Transport::events() {
  // Same fallback story as registry(): one process-wide log (disabled by
  // default) for Transport implementations that do not carry their own.
  static obs::EventLog fallback;
  return fallback;
}

/// Folds a transport's TransportStats into its registry as `transport.*`
/// gauges. Registered as a snapshot-time collector by each concrete
/// transport; shared here so the metric names stay identical across sim,
/// thread and TCP transports.
void fold_transport_stats(obs::Registry& registry, const sim::TransportStats& stats) {
  const auto set = [&registry](const char* name, std::uint64_t value) {
    registry.gauge(name).set(static_cast<std::int64_t>(value));
  };
  set("transport.messages_sent", stats.messages_sent);
  set("transport.messages_delivered", stats.messages_delivered);
  set("transport.messages_dropped", stats.messages_dropped);
  set("transport.bytes_sent", stats.bytes_sent);
  set("transport.bytes_received", stats.bytes_received);
  set("transport.reconnects", stats.reconnects);
  set("transport.connect_failures", stats.connect_failures);
  set("transport.send_queue_drops", stats.send_queue_drops);
  set("transport.send_queue_highwater", stats.send_queue_highwater);
  set("transport.ring_full_drops", stats.ring_full_drops);
  set("transport.ring_highwater", stats.ring_occupancy_highwater);
}

}  // namespace securestore::net
