#include "net/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>

#include "net/quorum.h"

namespace securestore::net {

namespace {

constexpr std::uint8_t kWireVersion = 1;

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_double(std::uint64_t v) { return std::bit_cast<double>(v); }

}  // namespace

void IntrospectRequest::encode(Writer& w) const {
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(format));
  w.u32(max_events);
}

IntrospectRequest IntrospectRequest::decode(Reader& r) {
  if (r.u8() != kWireVersion) throw DecodeError("introspect: bad version");
  IntrospectRequest req;
  const std::uint8_t format = r.u8();
  if (format > static_cast<std::uint8_t>(IntrospectFormat::kEvents)) {
    throw DecodeError("introspect: unknown format");
  }
  req.format = static_cast<IntrospectFormat>(format);
  req.max_events = r.u32();
  r.expect_end();
  return req;
}

void encode_sample(Writer& w, const obs::ServerSample& sample) {
  w.u8(kWireVersion);
  w.u32(sample.node);
  w.u32(sample.shard);
  w.u64(sample.now_us);
  w.u64(sample.uptime_us);
  w.u64(sample.ring_version);
  w.u64(sample.gossip_ticks);
  w.u64(sample.gossip_idle_us);
  w.u64(double_bits(sample.wal_append_ewma_us));
  w.u64(double_bits(sample.wal_append_p99_us));
  w.u64(sample.compaction_lag);
  w.u64(sample.memtable_bytes);
  w.u64(sample.requests);
  w.u64(sample.shed);
  w.u64(sample.net_backlog);
  w.u64(sample.hold_depth);
  w.u8(sample.overloaded ? 1 : 0);
}

obs::ServerSample decode_sample(Reader& r) {
  if (r.u8() != kWireVersion) throw DecodeError("introspect: bad sample version");
  obs::ServerSample s;
  s.node = r.u32();
  s.shard = r.u32();
  s.now_us = r.u64();
  s.uptime_us = r.u64();
  s.ring_version = r.u64();
  s.gossip_ticks = r.u64();
  s.gossip_idle_us = r.u64();
  s.wal_append_ewma_us = bits_double(r.u64());
  s.wal_append_p99_us = bits_double(r.u64());
  s.compaction_lag = r.u64();
  s.memtable_bytes = r.u64();
  s.requests = r.u64();
  s.shed = r.u64();
  s.net_backlog = r.u64();
  s.hold_depth = r.u64();
  s.overloaded = r.u8() != 0;
  return s;
}

void IntrospectResponse::encode(Writer& w) const {
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(format));
  if (format == IntrospectFormat::kStatus) {
    encode_sample(w, sample);
  } else {
    w.str(text);
  }
}

IntrospectResponse IntrospectResponse::decode(Reader& r) {
  if (r.u8() != kWireVersion) throw DecodeError("introspect: bad response version");
  IntrospectResponse resp;
  const std::uint8_t format = r.u8();
  if (format > static_cast<std::uint8_t>(IntrospectFormat::kEvents)) {
    throw DecodeError("introspect: unknown response format");
  }
  resp.format = static_cast<IntrospectFormat>(format);
  if (resp.format == IntrospectFormat::kStatus) {
    resp.sample = decode_sample(r);
  } else {
    resp.text = r.str();
  }
  r.expect_end();
  return resp;
}

IntrospectScraper::IntrospectScraper(RpcNode& node, std::vector<NodeId> servers,
                                     obs::HealthMonitor& monitor, Options options)
    : node_(node),
      servers_(std::move(servers)),
      monitor_(monitor),
      options_(options),
      alive_(std::make_shared<bool>(true)) {}

IntrospectScraper::~IntrospectScraper() { *alive_ = false; }

void IntrospectScraper::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void IntrospectScraper::stop() { running_ = false; }

void IntrospectScraper::tick() {
  if (!running_) return;
  scrape_once();
  auto alive = alive_;
  node_.transport().schedule(options_.interval, [this, alive] {
    if (*alive && running_) tick();
  });
}

void IntrospectScraper::scrape_once(std::function<void()> on_done) {
  rounds_started_ += 1;
  monitor_.begin_round(node_.transport().now());
  Writer w;
  IntrospectRequest{IntrospectFormat::kStatus, 0}.encode(w);
  auto alive = alive_;
  QuorumOptions quorum_options;
  quorum_options.timeout = options_.timeout;
  QuorumCall::start(
      node_, servers_, MsgType::kIntrospect, w.data(),
      [this, alive](NodeId from, MsgType type, BytesView body) {
        if (!*alive || type != MsgType::kAck) return false;
        try {
          Reader r(body);
          IntrospectResponse resp = IntrospectResponse::decode(r);
          if (resp.format == IntrospectFormat::kStatus) {
            const auto it = std::find(servers_.begin(), servers_.end(), from);
            if (it != servers_.end()) {
              monitor_.observe(static_cast<std::size_t>(it - servers_.begin()),
                               resp.sample);
            }
          }
        } catch (const DecodeError&) {
          // A garbled status reply scores as a failed scrape (end_round
          // fills the hole) — a Byzantine server gains nothing by it.
        }
        return false;  // collect every reply until the deadline
      },
      [this, alive, on_done = std::move(on_done)](QuorumOutcome, std::size_t) {
        if (*alive) monitor_.end_round();
        if (on_done) on_done();
      },
      quorum_options);
}

HttpIntrospectServer::HttpIntrospectServer(Options options, Routes routes)
    : options_(options), routes_(std::move(routes)), tokens_(options.burst) {}

HttpIntrospectServer::~HttpIntrospectServer() { stop(); }

bool HttpIntrospectServer::start() {
  if (listen_fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  last_refill_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { serve(); });
  return true;
}

void HttpIntrospectServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

std::uint64_t HttpIntrospectServer::requests_served() const {
  return served_.load(std::memory_order_relaxed);
}

std::uint64_t HttpIntrospectServer::requests_limited() const {
  return limited_.load(std::memory_order_relaxed);
}

bool HttpIntrospectServer::admit() {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(options_.burst, tokens_ + elapsed * options_.rate_per_sec);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void HttpIntrospectServer::serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpIntrospectServer::handle_connection(int fd) {
  // Read until the header terminator or a small cap; a GET has no body.
  char buffer[2048];
  std::size_t have = 0;
  while (have < sizeof buffer - 1) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/250) <= 0) return;
    const ssize_t n = ::read(fd, buffer + have, sizeof buffer - 1 - have);
    if (n <= 0) return;
    have += static_cast<std::size_t>(n);
    buffer[have] = '\0';
    if (std::strstr(buffer, "\r\n\r\n") != nullptr) break;
  }

  const auto respond = [&](const char* status, const char* content_type,
                           const std::string& body) {
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: " + std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::write(fd, out.data() + sent, out.size() - sent);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  };

  std::string_view request(buffer, have);
  if (request.substr(0, 4) != "GET ") {
    respond("405 Method Not Allowed", "text/plain", "GET only\n");
    return;
  }
  const std::size_t path_end = request.find(' ', 4);
  if (path_end == std::string_view::npos) {
    respond("400 Bad Request", "text/plain", "malformed request line\n");
    return;
  }
  const std::string_view path = request.substr(4, path_end - 4);

  if (!admit()) {
    limited_.fetch_add(1, std::memory_order_relaxed);
    respond("429 Too Many Requests", "text/plain", "rate limited\n");
    return;
  }
  served_.fetch_add(1, std::memory_order_relaxed);

  if (path == "/metrics" && routes_.metrics) {
    respond("200 OK", "text/plain; version=0.0.4", routes_.metrics());
  } else if (path == "/metrics.json" && routes_.metrics_json) {
    respond("200 OK", "application/json", routes_.metrics_json());
  } else if (path == "/events" && routes_.events) {
    respond("200 OK", "application/json", routes_.events());
  } else if (path == "/healthz" && routes_.healthz) {
    respond("200 OK", "text/plain", routes_.healthz());
  } else {
    respond("404 Not Found", "text/plain", "unknown path\n");
  }
}

}  // namespace securestore::net
