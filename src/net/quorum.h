// QuorumCall: the paper's basic interaction pattern.
//
// Sends one request to a set of servers and feeds responses to a collector
// until the collector declares the call satisfied, every target has
// answered, or the timeout fires. All of Fig. 1 / Fig. 2 / §5.3 and both
// baselines are built from this primitive, which is also where "wait for at
// least ⌈(n+b+1)/2⌉ responses"-style logic lives in the callers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/rpc.h"

namespace securestore::net {

enum class QuorumOutcome {
  kSatisfied,  // the collector returned true
  kExhausted,  // every target responded but the collector never accepted
  kTimeout,    // deadline passed first
};

struct QuorumOptions {
  SimDuration timeout = seconds(5);
  /// Carried in every request's envelope when valid, so server-side spans
  /// parent to the operation that issued this call.
  obs::TraceContext trace{};
};

class QuorumCall {
 public:
  using Options = QuorumOptions;

  /// `on_reply` is invoked once per response; return true to finish the
  /// call early (remaining in-flight rpcs are cancelled). `on_done` is
  /// invoked exactly once. Both callbacks may start new calls.
  using ReplyFn = std::function<bool(NodeId from, MsgType type, BytesView body)>;
  using DoneFn = std::function<void(QuorumOutcome outcome, std::size_t reply_count)>;

  static void start(RpcNode& node, const std::vector<NodeId>& targets, MsgType type,
                    const Bytes& body, ReplyFn on_reply, DoneFn on_done,
                    Options options = Options{});
};

}  // namespace securestore::net
