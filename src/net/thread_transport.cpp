#include "net/thread_transport.h"

namespace securestore::net {

ThreadTransport::ThreadTransport(sim::NetworkModel network,
                                 std::shared_ptr<obs::Registry> registry,
                                 std::shared_ptr<obs::EventLog> events)
    : network_(std::move(network)),
      registry_(registry != nullptr ? std::move(registry)
                                    : std::make_shared<obs::Registry>()),
      events_(events != nullptr ? std::move(events) : std::make_shared<obs::EventLog>()) {
  collector_id_ = registry_->add_collector(
      [this](obs::Registry& r) { fold_transport_stats(r, stats()); });
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

ThreadTransport::~ThreadTransport() {
  stop();
  registry_->remove_collector(collector_id_);
}

void ThreadTransport::stop() {
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  jobs_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ThreadTransport::register_node(NodeId node, DeliverFn deliver) {
  std::lock_guard lock(handlers_mutex_);
  handlers_[node] = std::move(deliver);
}

void ThreadTransport::unregister_node(NodeId node) {
  std::lock_guard lock(handlers_mutex_);
  handlers_.erase(node);
}

SimTime ThreadTransport::now() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count());
}

void ThreadTransport::enqueue(Clock::time_point at, std::function<void()> run) {
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) return;
    jobs_.push(Job{at, next_sequence_++, std::move(run)});
  }
  jobs_cv_.notify_all();
}

void ThreadTransport::send(NodeId from, NodeId to, Bytes payload) {
  std::optional<SimDuration> latency;
  {
    std::lock_guard lock(jobs_mutex_);
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    latency = network_.sample_delivery(from, to);
    if (!latency.has_value()) {
      ++stats_.messages_dropped;
      return;
    }
  }

  enqueue(Clock::now() + std::chrono::microseconds(*latency),
          [this, from, to, payload = std::move(payload)] {
            DeliverFn handler;
            {
              std::lock_guard lock(handlers_mutex_);
              const auto it = handlers_.find(to);
              if (it == handlers_.end()) {
                std::lock_guard stats_lock(jobs_mutex_);
                ++stats_.messages_dropped;
                return;
              }
              handler = it->second;  // copy, so delivery runs unlocked
            }
            {
              std::lock_guard stats_lock(jobs_mutex_);
              ++stats_.messages_delivered;
              stats_.bytes_received += payload.size();
            }
            handler(from, payload);
          });
}

void ThreadTransport::schedule(SimDuration delay, std::function<void()> callback) {
  enqueue(Clock::now() + std::chrono::microseconds(delay), std::move(callback));
}

void ThreadTransport::dispatch_loop() {
  std::unique_lock lock(jobs_mutex_);
  while (true) {
    if (stopping_) return;
    if (jobs_.empty()) {
      jobs_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      continue;
    }
    const Clock::time_point due = jobs_.top().at;
    if (Clock::now() < due) {
      jobs_cv_.wait_until(lock, due, [this, due] {
        return stopping_ || (!jobs_.empty() && jobs_.top().at < due);
      });
      continue;
    }
    Job job = std::move(const_cast<Job&>(jobs_.top()));
    jobs_.pop();
    lock.unlock();
    job.run();
    lock.lock();
  }
}

}  // namespace securestore::net
