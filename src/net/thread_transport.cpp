#include "net/thread_transport.h"

#include <algorithm>

namespace securestore::net {

ThreadTransport::ThreadTransport(sim::NetworkModel network,
                                 std::shared_ptr<obs::Registry> registry,
                                 std::shared_ptr<obs::EventLog> events)
    : network_(std::move(network)),
      registry_(registry != nullptr ? std::move(registry)
                                    : std::make_shared<obs::Registry>()),
      events_(events != nullptr ? std::move(events) : std::make_shared<obs::EventLog>()) {
  collector_id_ = registry_->add_collector([this](obs::Registry& r) {
    fold_transport_stats(r, stats());
    // The high-watermark is a per-snapshot signal: reset after folding so
    // successive snapshots show the pressure ramp, not one all-time peak.
    ring_highwater_.store(0, std::memory_order_relaxed);
  });
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

ThreadTransport::~ThreadTransport() {
  stop();
  registry_->remove_collector(collector_id_);
}

void ThreadTransport::stop() {
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  jobs_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();

  // Nothing drains the queues anymore: account every undelivered message
  // so `sent == delivered + dropped` survives a send racing stop().
  std::uint64_t undelivered = 0;
  {
    std::lock_guard lock(jobs_mutex_);
    while (!jobs_.empty()) {
      if (jobs_.top().delivery) ++undelivered;
      jobs_.pop();
    }
  }
  std::vector<std::shared_ptr<Endpoint>> endpoints;
  {
    std::lock_guard lock(handlers_mutex_);
    for (auto& [node, endpoint] : endpoints_) endpoints.push_back(endpoint);
  }
  std::vector<Delivery> rest;
  for (const auto& endpoint : endpoints) {
    // close() waits out in-flight pushes; racing senders from here on get
    // kClosed back and count their own drop.
    endpoint->ring.close();
    rest.clear();
    while (endpoint->ring.drain(rest, kMaxDeliveryBatch) != 0) {
      undelivered += rest.size();
      rest.clear();
    }
  }
  if (undelivered != 0) {
    std::lock_guard lock(jobs_mutex_);
    stats_.messages_dropped += undelivered;
  }
}

void ThreadTransport::set_max_batch(std::size_t n) {
  max_batch_.store(std::clamp<std::size_t>(n, 1, kMaxDeliveryBatch),
                   std::memory_order_relaxed);
}

void ThreadTransport::register_node(NodeId node, DeliverFn deliver) {
  register_node_batched(node, [fn = std::move(deliver)](std::vector<Delivery>& batch) {
    for (Delivery& d : batch) fn(d.from, d.payload);
  });
}

void ThreadTransport::register_node_batched(NodeId node, BatchDeliverFn deliver) {
  std::lock_guard lock(handlers_mutex_);
  auto& endpoint = endpoints_[node];
  if (endpoint == nullptr) endpoint = std::make_shared<Endpoint>();
  endpoint->deliver = std::move(deliver);
  endpoint->registered = true;
}

void ThreadTransport::unregister_node(NodeId node) {
  // Tombstone, not erase: in-flight ring entries still get drained — and
  // counted dropped — by the pending drain job or by stop().
  std::lock_guard lock(handlers_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  it->second->registered = false;
  it->second->deliver = nullptr;
}

std::size_t ThreadTransport::backlog(NodeId node) const {
  std::lock_guard lock(handlers_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end() || !it->second->registered) return 0;
  return it->second->ring.size();
}

SimTime ThreadTransport::now() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count());
}

bool ThreadTransport::enqueue(Clock::time_point at, std::function<void()> run, bool delivery) {
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) return false;
    jobs_.push(Job{at, next_sequence_++, std::move(run), delivery});
  }
  jobs_cv_.notify_all();
  return true;
}

void ThreadTransport::send(NodeId from, NodeId to, Bytes payload) {
  std::optional<SimDuration> latency;
  {
    std::lock_guard lock(jobs_mutex_);
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    latency = network_.sample_delivery(from, to);
    if (!latency.has_value()) {
      ++stats_.messages_dropped;
      return;
    }
  }

  if (*latency == 0) {
    // Zero modeled latency: straight into the destination ring from the
    // caller's thread, no timer hop and no jobs-mutex handoff.
    deliver_to_ring(from, to, std::move(payload));
    return;
  }
  if (!enqueue(Clock::now() + std::chrono::microseconds(*latency),
               [this, from, to, payload = std::move(payload)]() mutable {
                 deliver_to_ring(from, to, std::move(payload));
               },
               /*delivery=*/true)) {
    std::lock_guard lock(jobs_mutex_);
    ++stats_.messages_dropped;  // stopping: this message will never run
  }
}

void ThreadTransport::deliver_to_ring(NodeId from, NodeId to, Bytes payload) {
  std::shared_ptr<Endpoint> endpoint;
  {
    std::lock_guard lock(handlers_mutex_);
    const auto it = endpoints_.find(to);
    if (it != endpoints_.end() && it->second->registered) endpoint = it->second;
  }
  if (endpoint == nullptr) {
    std::lock_guard lock(jobs_mutex_);
    ++stats_.messages_dropped;
    return;
  }
  const DeliveryRing::PushResult pushed =
      endpoint->ring.try_push(Delivery{from, std::move(payload)});
  if (pushed != DeliveryRing::PushResult::kOk) {
    std::lock_guard lock(jobs_mutex_);
    ++stats_.messages_dropped;
    if (pushed == DeliveryRing::PushResult::kFull) ++stats_.ring_full_drops;
    return;
  }
  detail_record_highwater(ring_highwater_, endpoint->ring.size());
  // One wakeup per burst: only the push that found the ring idle schedules
  // a drain. If the transport is stopping the job is refused and the entry
  // stays in the ring for stop() to account.
  if (!endpoint->drain_pending.exchange(true, std::memory_order_acq_rel)) {
    (void)enqueue(Clock::now(), [this, endpoint] { drain_endpoint(endpoint); });
  }
}

void ThreadTransport::drain_endpoint(const std::shared_ptr<Endpoint>& endpoint) {
  // Disarm BEFORE draining: a push that lands after this re-arms and
  // schedules the next drain, so nothing published is ever stranded.
  endpoint->drain_pending.store(false, std::memory_order_release);

  std::vector<Delivery> batch;
  endpoint->ring.drain(batch, max_batch_.load(std::memory_order_relaxed));
  if (!batch.empty()) {
    BatchDeliverFn handler;
    {
      std::lock_guard lock(handlers_mutex_);
      if (endpoint->registered) handler = endpoint->deliver;
    }
    std::size_t bytes = 0;
    for (const Delivery& d : batch) bytes += d.payload.size();
    {
      std::lock_guard lock(jobs_mutex_);
      if (handler) {
        stats_.messages_delivered += batch.size();
        stats_.bytes_received += bytes;
      } else {
        stats_.messages_dropped += batch.size();  // unregistered meanwhile
      }
    }
    if (handler) handler(batch);
  }

  // A capped drain can leave entries behind with no producer left to wake
  // us; keep draining until the ring is visibly empty.
  if (!endpoint->ring.empty() &&
      !endpoint->drain_pending.exchange(true, std::memory_order_acq_rel)) {
    (void)enqueue(Clock::now(), [this, endpoint] { drain_endpoint(endpoint); });
  }
}

void ThreadTransport::schedule(SimDuration delay, std::function<void()> callback) {
  (void)enqueue(Clock::now() + std::chrono::microseconds(delay), std::move(callback));
}

void ThreadTransport::dispatch_loop() {
  std::unique_lock lock(jobs_mutex_);
  while (true) {
    if (stopping_) return;
    if (jobs_.empty()) {
      jobs_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      continue;
    }
    const Clock::time_point due = jobs_.top().at;
    if (Clock::now() < due) {
      jobs_cv_.wait_until(lock, due, [this, due] {
        return stopping_ || (!jobs_.empty() && jobs_.top().at < due);
      });
      continue;
    }
    Job job = std::move(const_cast<Job&>(jobs_.top()));
    jobs_.pop();
    lock.unlock();
    job.run();
    lock.lock();
  }
}

}  // namespace securestore::net
