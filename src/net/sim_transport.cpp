#include "net/sim_transport.h"

namespace securestore::net {

SimTransport::SimTransport(sim::Scheduler& scheduler, sim::NetworkModel network,
                           std::shared_ptr<obs::Registry> registry,
                           std::shared_ptr<obs::EventLog> events)
    : scheduler_(scheduler),
      network_(std::move(network)),
      registry_(registry != nullptr ? std::move(registry)
                                    : std::make_shared<obs::Registry>()),
      events_(events != nullptr ? std::move(events) : std::make_shared<obs::EventLog>()) {
  collector_id_ = registry_->add_collector(
      [this](obs::Registry& r) { fold_transport_stats(r, stats_); });
}

SimTransport::~SimTransport() { registry_->remove_collector(collector_id_); }

void SimTransport::register_node(NodeId node, DeliverFn deliver) {
  handlers_[node] = std::move(deliver);
}

void SimTransport::unregister_node(NodeId node) { handlers_.erase(node); }

void SimTransport::send(NodeId from, NodeId to, Bytes payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  const auto latency = network_.sample_delivery(from, to);
  if (!latency.has_value()) {
    ++stats_.messages_dropped;
    return;
  }

  scheduler_.schedule_in(*latency, [this, from, to, payload = std::move(payload)]() {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    stats_.bytes_received += payload.size();
    it->second(from, payload);
  });
}

void SimTransport::schedule(SimDuration delay, std::function<void()> callback) {
  scheduler_.schedule_in(delay, std::move(callback));
}

}  // namespace securestore::net
