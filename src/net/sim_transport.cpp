#include "net/sim_transport.h"

#include <algorithm>

namespace securestore::net {

SimTransport::SimTransport(sim::Scheduler& scheduler, sim::NetworkModel network,
                           std::shared_ptr<obs::Registry> registry,
                           std::shared_ptr<obs::EventLog> events)
    : scheduler_(scheduler),
      network_(std::move(network)),
      registry_(registry != nullptr ? std::move(registry)
                                    : std::make_shared<obs::Registry>()),
      events_(events != nullptr ? std::move(events) : std::make_shared<obs::EventLog>()) {
  collector_id_ = registry_->add_collector([this](obs::Registry& r) {
    fold_transport_stats(r, stats_);
    // The occupancy high-watermark is a per-snapshot signal: reset after
    // folding so successive snapshots show the pressure ramp.
    stats_.ring_occupancy_highwater = 0;
  });
}

SimTransport::~SimTransport() { registry_->remove_collector(collector_id_); }

void SimTransport::register_node(NodeId node, DeliverFn deliver) {
  // Per-message handlers ride the batch path as a loop over the batch, so
  // both registration styles share one delivery pipeline.
  register_node_batched(node, [fn = std::move(deliver)](std::vector<Delivery>& batch) {
    for (Delivery& d : batch) fn(d.from, d.payload);
  });
}

void SimTransport::register_node_batched(NodeId node, BatchDeliverFn deliver) {
  // Re-registering keeps any pending deliveries: they land on the new
  // handler, matching the old delivery-time handler lookup.
  endpoints_[node].deliver = std::move(deliver);
}

void SimTransport::unregister_node(NodeId node) {
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  stats_.messages_dropped += it->second.pending.size() + it->second.service_queue.size();
  endpoints_.erase(it);
}

void SimTransport::send(NodeId from, NodeId to, Bytes payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  const auto latency = network_.sample_delivery(from, to);
  if (!latency.has_value()) {
    ++stats_.messages_dropped;
    return;
  }

  scheduler_.schedule_in(*latency, [this, from, to, payload = std::move(payload)]() mutable {
    arrive(from, to, std::move(payload));
  });
}

void SimTransport::arrive(NodeId from, NodeId to, Bytes payload) {
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    ++stats_.messages_dropped;
    return;
  }
  Endpoint& endpoint = it->second;
  if (endpoint.service_time > 0) {
    // M/D/1-style service queue: the message waits in FIFO order for a CPU
    // pickup, one every service_time. Capacity, not latency: a loaded
    // node's queue grows and its effective throughput caps at
    // 1/service_time — except that shed pickups are refunded, so refusals
    // drain at refusal speed instead of processing speed.
    endpoint.service_queue.push_back(Delivery{from, std::move(payload)});
    stats_.ring_occupancy_highwater =
        std::max(stats_.ring_occupancy_highwater,
                 static_cast<std::uint64_t>(endpoint.service_queue.size()));
    if (!endpoint.service_active) {
      endpoint.service_active = true;
      const std::uint64_t epoch = endpoint.service_epoch;
      scheduler_.schedule_in(endpoint.service_time,
                             [this, to, epoch] { service_step(to, epoch); });
    }
    return;
  }
  enqueue(from, to, std::move(payload));
}

void SimTransport::service_step(NodeId to, std::uint64_t epoch) {
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return;
  Endpoint& endpoint = it->second;
  if (endpoint.service_epoch != epoch) return;  // model was reconfigured
  if (endpoint.service_queue.empty()) {
    endpoint.service_active = false;
    return;
  }
  Delivery next = std::move(endpoint.service_queue.front());
  endpoint.service_queue.pop_front();
  if (endpoint.service_queue.empty()) {
    endpoint.service_active = false;
    endpoint.service_credits = 0;  // an idle CPU has nothing to accelerate
  } else {
    // A credit (a shed pickup, refunded by the admission gate before this
    // step was due) makes the next pickup free: event ordering guarantees
    // the refusal of the message delivered below lands before the pickup
    // scheduled here, so an all-shedding queue drains in one cascade.
    SimDuration delay = endpoint.service_time;
    if (endpoint.service_credits > 0) {
      --endpoint.service_credits;
      delay = 0;
    }
    scheduler_.schedule_in(delay, [this, to, epoch] { service_step(to, epoch); });
  }
  enqueue(next.from, to, std::move(next.payload));
}

std::size_t SimTransport::backlog(NodeId node) const {
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return 0;
  const Endpoint& endpoint = it->second;
  return endpoint.pending.size() + endpoint.service_queue.size();
}

void SimTransport::refund_service(NodeId node) {
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  Endpoint& endpoint = it->second;
  if (endpoint.service_time == 0) return;
  // A shed pickup hands its slot back: the gate refused it before any
  // processing cost was paid, so the next queued pickup rides free.
  if (!endpoint.service_queue.empty()) ++endpoint.service_credits;
}

void SimTransport::enqueue(NodeId from, NodeId to, Bytes payload) {
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    ++stats_.messages_dropped;
    return;
  }
  Endpoint& endpoint = it->second;
  endpoint.pending.push_back(Delivery{from, std::move(payload)});
  if (!endpoint.flush_scheduled) {
    // Zero-delay flush: it runs at this same instant but after every
    // arrival event already queued for it, so all same-timestamp messages
    // to this node coalesce into the one batch.
    endpoint.flush_scheduled = true;
    scheduler_.schedule_in(0, [this, to] { flush(to); });
  }
}

void SimTransport::flush(NodeId to) {
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return;  // unregistered; arrivals were counted dropped
  Endpoint& endpoint = it->second;
  endpoint.flush_scheduled = false;
  if (endpoint.pending.empty()) return;

  std::vector<Delivery> batch;
  if (endpoint.pending.size() <= kMaxDeliveryBatch) {
    batch.swap(endpoint.pending);
  } else {
    const auto split = endpoint.pending.begin() + static_cast<std::ptrdiff_t>(kMaxDeliveryBatch);
    batch.assign(std::make_move_iterator(endpoint.pending.begin()),
                 std::make_move_iterator(split));
    endpoint.pending.erase(endpoint.pending.begin(), split);
    endpoint.flush_scheduled = true;
    scheduler_.schedule_in(0, [this, to] { flush(to); });
  }

  stats_.messages_delivered += batch.size();
  for (const Delivery& d : batch) stats_.bytes_received += d.payload.size();

  // Copy the handler: it may re-register or unregister nodes (invalidating
  // `endpoint`) while running.
  const BatchDeliverFn deliver = endpoint.deliver;
  deliver(batch);
}

void SimTransport::schedule(SimDuration delay, std::function<void()> callback) {
  scheduler_.schedule_in(delay, std::move(callback));
}

void SimTransport::set_service_time(NodeId node, SimDuration per_message) {
  Endpoint& endpoint = endpoints_[node];
  endpoint.service_time = per_message;
  ++endpoint.service_epoch;  // orphan any scheduled pickup
  endpoint.service_active = false;
  endpoint.service_credits = 0;
  if (per_message == 0) {
    // Capacity model off: hand anything still queued straight to delivery.
    std::deque<Delivery> drain;
    drain.swap(endpoint.service_queue);
    for (Delivery& delivery : drain) enqueue(delivery.from, node, std::move(delivery.payload));
  } else if (!endpoint.service_queue.empty()) {
    endpoint.service_active = true;
    const std::uint64_t epoch = endpoint.service_epoch;
    scheduler_.schedule_in(per_message, [this, node, epoch] { service_step(node, epoch); });
  }
}

}  // namespace securestore::net
