// Introspection: the live health plane's wire layer (PROTOCOL.md §13).
//
// Three pieces:
//
//   * the `kIntrospect` request/response codec — an unauthenticated (but
//     server-side rate-limited) RPC any peer can send a server to ask for
//     its status. Four response formats: a compact binary `ServerSample`
//     (what the watchdog scrapes), the Prometheus text exposition, the
//     BENCH-shaped JSON, and a bounded recent-events dump from the
//     `EventLog` ring. Unauthenticated is deliberate: health questions
//     must be answerable when key distribution itself is what broke; the
//     rate limit bounds what that concession costs.
//   * `IntrospectScraper` — the watchdog's driver: one `QuorumCall` fan
//     out per round to every server, decoded samples fed into an
//     `obs::HealthMonitor`, silence becoming a timeout observation. Can
//     self-schedule on the transport clock (`start`) or be single-stepped
//     (`scrape_once`) by benches.
//   * `HttpIntrospectServer` — a minimal HTTP/1.1 listener for TCP
//     deployments, serving GET /metrics (Prometheus), /metrics.json,
//     /events and /healthz from caller-provided render callbacks, so
//     `curl` and real Prometheus can scrape a securestore process with no
//     protocol shim. One request per connection, own accept thread,
//     token-bucket rate limit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/rpc.h"
#include "obs/health.h"
#include "util/serial.h"

namespace securestore::net {

/// Response body format a kIntrospect request selects.
enum class IntrospectFormat : std::uint8_t {
  kStatus = 0,      // binary obs::ServerSample (the watchdog's diet)
  kPrometheus = 1,  // text exposition 0.0.4
  kJson = 2,        // BENCH-sidecar-shaped JSON
  kEvents = 3,      // recent events as Chrome-trace JSON
};

struct IntrospectRequest {
  IntrospectFormat format = IntrospectFormat::kStatus;
  std::uint32_t max_events = 256;  // kEvents only; servers clamp it

  void encode(Writer& w) const;
  /// Throws DecodeError on malformed or unknown-version input.
  static IntrospectRequest decode(Reader& r);
};

struct IntrospectResponse {
  IntrospectFormat format = IntrospectFormat::kStatus;
  obs::ServerSample sample;  // kStatus
  std::string text;          // every other format

  void encode(Writer& w) const;
  static IntrospectResponse decode(Reader& r);
};

/// Versioned binary codec for the status sample (doubles as IEEE-754
/// bits, so the encoding is canonical).
void encode_sample(Writer& w, const obs::ServerSample& sample);
obs::ServerSample decode_sample(Reader& r);

/// Drives scrape rounds against a fixed server set and feeds an
/// `obs::HealthMonitor`. One round = one kIntrospect(kStatus) to every
/// server via QuorumCall; each decoded reply becomes `observe(i, sample)`
/// and anything silent at the timeout is observed as a failure when the
/// round ends. Single-threaded like every RpcNode user: construct, start
/// and stop from the transport's callback context.
class IntrospectScraper {
 public:
  struct Options {
    SimDuration interval = milliseconds(50);  // round start → round start
    SimDuration timeout = milliseconds(25);   // per-round reply deadline
  };

  /// `servers[i]` must line up with `monitor.server(i)`.
  IntrospectScraper(RpcNode& node, std::vector<NodeId> servers,
                    obs::HealthMonitor& monitor, Options options);
  IntrospectScraper(RpcNode& node, std::vector<NodeId> servers,
                    obs::HealthMonitor& monitor)
      : IntrospectScraper(node, std::move(servers), monitor, Options{}) {}
  ~IntrospectScraper();

  IntrospectScraper(const IntrospectScraper&) = delete;
  IntrospectScraper& operator=(const IntrospectScraper&) = delete;

  /// Begins periodic rounds, the first immediately.
  void start();
  /// Stops scheduling new rounds; an in-flight round still completes its
  /// monitor bookkeeping.
  void stop();
  bool running() const { return running_; }

  /// One round now, independent of start/stop. `on_done` (optional) fires
  /// after the monitor round ended.
  void scrape_once(std::function<void()> on_done = nullptr);

  std::uint64_t rounds_started() const { return rounds_started_; }

 private:
  void tick();

  RpcNode& node_;
  const std::vector<NodeId> servers_;
  obs::HealthMonitor& monitor_;
  const Options options_;
  bool running_ = false;
  std::uint64_t rounds_started_ = 0;
  std::shared_ptr<bool> alive_;  // guards scheduled callbacks after dtor
};

/// Minimal HTTP/1.1 exposition listener for TCP deployments. Not a web
/// server: GET only, one request per connection, bounded request size,
/// fixed route table. Render callbacks run on the accept thread — they
/// must be thread-safe against the serving process (Registry snapshots
/// and EventLog dumps already are).
class HttpIntrospectServer {
 public:
  using RenderFn = std::function<std::string()>;

  struct Options {
    std::uint16_t port = 0;     // 0: ephemeral, see port()
    double rate_per_sec = 100;  // token-bucket refill
    double burst = 50;          // bucket depth
  };

  struct Routes {
    RenderFn metrics;       // GET /metrics       → text exposition 0.0.4
    RenderFn metrics_json;  // GET /metrics.json  → BENCH-shaped JSON
    RenderFn events;        // GET /events        → Chrome-trace JSON
    RenderFn healthz;       // GET /healthz       → one status line
  };

  HttpIntrospectServer(Options options, Routes routes);
  ~HttpIntrospectServer();

  HttpIntrospectServer(const HttpIntrospectServer&) = delete;
  HttpIntrospectServer& operator=(const HttpIntrospectServer&) = delete;

  /// Binds 127.0.0.1 and spawns the accept thread. False when the bind or
  /// listen failed (port taken); the object is then inert.
  bool start();
  void stop();

  /// The bound port (resolves an ephemeral request); 0 before start().
  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const;
  std::uint64_t requests_limited() const;

 private:
  void serve();
  void handle_connection(int fd);
  bool admit();

  Options options_;
  Routes routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> limited_{0};
  double tokens_ = 0;  // accept-thread-only
  std::chrono::steady_clock::time_point last_refill_{};
};

}  // namespace securestore::net
