// FaultInjectingTransport: deterministic message-level chaos (DESIGN.md §9).
//
// A decorator over *any* `Transport` (sim, thread, TCP) that applies
// per-link fault rules on the send path — drop, extra fixed/jittered delay,
// duplication, reordering (hold one message so later ones overtake),
// payload truncation/corruption, and directed partition windows. Every
// decision is drawn from one seeded `Rng`, so a run's entire fault timeline
// is a pure function of (seed, send sequence): re-running the same
// deterministic workload with the same seed injects the identical faults,
// which is how chaos failures reproduce (`injected()` exposes the timeline
// for the replay assertion).
//
// Each injected fault also lands in the wrapped transport's metrics
// registry as a `chaos.*` counter, so a dump shows exactly how much abuse a
// run absorbed.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/transport.h"
#include "util/rng.h"

namespace securestore::net {

/// Per-link fault probabilities and latency shaping. All probabilities are
/// independent Bernoulli draws per message; a message can be both delayed
/// and duplicated, but a dropped message is simply gone.
struct FaultRule {
  double drop = 0.0;       // message vanishes
  double duplicate = 0.0;  // a second copy is delivered shortly after
  double corrupt = 0.0;    // 1..3 payload bytes are flipped
  double truncate = 0.0;   // payload is cut to a random shorter prefix
  double reorder = 0.0;    // message is held `reorder_hold` so later ones overtake
  SimDuration delay_base = 0;    // extra latency added to every message
  SimDuration delay_jitter = 0;  // + uniform [0, delay_jitter]
  SimDuration reorder_hold = milliseconds(5);
  SimDuration duplicate_gap = microseconds(500);  // second copy lags this much

  bool any() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || truncate > 0 || reorder > 0 ||
           delay_base > 0 || delay_jitter > 0;
  }
};

enum class FaultKind : std::uint8_t {
  kDrop,
  kPartitionDrop,
  kDelay,
  kDuplicate,
  kReorder,
  kCorrupt,
  kTruncate,
};

const char* fault_kind_name(FaultKind kind);

/// One injected fault, in injection order. The sequence of these is the
/// run's fault timeline; identical across runs with the same seed and the
/// same deterministic workload.
struct FaultEvent {
  std::uint64_t sequence = 0;  // dense injection counter, starts at 0
  FaultKind kind{};
  NodeId from{};
  NodeId to{};

  bool operator==(const FaultEvent&) const = default;
};

class FaultInjectingTransport final : public Transport {
 public:
  /// Wraps `inner`; all fault decisions derive from `seed`. The wrapper
  /// registers/schedules/reports through `inner`, so protocol code written
  /// against `Transport` runs unmodified under chaos.
  FaultInjectingTransport(Transport& inner, std::uint64_t seed);

  // Transport interface: everything but send() is a pure delegate.
  void register_node(NodeId node, DeliverFn deliver) override;
  void register_node_batched(NodeId node, BatchDeliverFn deliver) override;
  void unregister_node(NodeId node) override;
  void send(NodeId from, NodeId to, Bytes payload) override;
  SimTime now() const override { return inner_.now(); }
  void schedule(SimDuration delay, std::function<void()> callback) override;
  std::size_t backlog(NodeId node) const override { return inner_.backlog(node); }
  void refund_service(NodeId node) override { inner_.refund_service(node); }
  const sim::TransportStats& stats() const override { return inner_.stats(); }
  void reset_stats() override { inner_.reset_stats(); }
  obs::Registry& registry() override { return inner_.registry(); }
  obs::EventLog& events() override { return inner_.events(); }

  // --- Fault rules --------------------------------------------------------

  /// Applied to every link without a per-link override.
  void set_default_rule(const FaultRule& rule);
  /// Overrides the rule of one directed link.
  void set_link_rule(NodeId from, NodeId to, const FaultRule& rule);
  void clear_link_rule(NodeId from, NodeId to);
  void clear_link_rules();

  /// Directed partition window: messages `from` -> `to` are dropped (and
  /// counted as `chaos.partition_drop`) until healed. Asymmetric splits
  /// come from partitioning only one direction.
  void partition_link(NodeId from, NodeId to);
  void heal_link(NodeId from, NodeId to);
  /// Severs every directed link between the two sets, both directions.
  void partition_groups(const std::vector<NodeId>& a, const std::vector<NodeId>& b);
  void heal_all_partitions();
  bool link_partitioned(NodeId from, NodeId to) const;

  // --- Timeline -----------------------------------------------------------

  /// Total faults injected so far (also the next event's sequence).
  std::uint64_t injected_count() const;
  /// The recorded timeline, capped at `kTimelineCap` events (the count keeps
  /// going; only the recording stops). Copy — safe across threads.
  std::vector<FaultEvent> injected() const;

  static constexpr std::size_t kTimelineCap = 1u << 16;

  Transport& inner() { return inner_; }

 private:
  const FaultRule& rule_for_locked(NodeId from, NodeId to) const;
  void note_locked(FaultKind kind, NodeId from, NodeId to);

  Transport& inner_;
  // One lock covers rng + rules + timeline: sends may come from any thread
  // on the real transports; under the simulator it is uncontended.
  mutable std::mutex mutex_;
  Rng rng_;
  FaultRule default_rule_;
  std::unordered_map<std::uint64_t, FaultRule> link_rules_;
  std::unordered_set<std::uint64_t> partitioned_links_;
  std::uint64_t injected_ = 0;
  std::vector<FaultEvent> timeline_;

  // chaos.* counters in the wrapped registry, resolved once.
  obs::Counter& drops_;
  obs::Counter& partition_drops_;
  obs::Counter& delays_;
  obs::Counter& duplicates_;
  obs::Counter& reorders_;
  obs::Counter& corruptions_;
  obs::Counter& truncations_;
};

}  // namespace securestore::net
