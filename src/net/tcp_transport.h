// TCP transport: the store over real sockets.
//
// Each process runs one TcpTransport: it listens on its own port, hosts any
// number of local nodes, and routes messages to remote nodes through a
// static endpoint map (NodeId -> host:port) — the deployment directory a
// real installation would distribute alongside the key directory.
//
// Wire framing per message: u32 length · u32 from · u32 to · payload.
// Outbound connections are cached per endpoint and re-established on
// failure; like the other transports, delivery is best-effort datagram
// semantics (a send during a broken connection is silently lost and the
// protocol timeouts handle it).
//
// Threading model matches ThreadTransport: every delivery and scheduled
// callback runs on ONE dispatch thread, so protocol objects stay
// single-threaded. Initiate client operations via schedule(0, ...).
// Call stop() before destroying nodes registered on the transport.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace securestore::net {

struct TcpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  bool operator==(const TcpEndpoint&) const = default;
  bool operator<(const TcpEndpoint& other) const {
    return std::tie(host, port) < std::tie(other.host, other.port);
  }
};

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on `listen_port` (0 = pick an ephemeral port, see
  /// `port()`). `directory` maps every node in the deployment to its
  /// process's endpoint; nodes registered locally are delivered in-process.
  TcpTransport(std::uint16_t listen_port, std::map<NodeId, TcpEndpoint> directory);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// The actual listening port (after ephemeral resolution).
  std::uint16_t port() const { return port_; }

  /// Adds/updates directory entries (e.g. once an ephemeral peer port is
  /// known). Thread-safe.
  void set_endpoint(NodeId node, TcpEndpoint endpoint);

  void register_node(NodeId node, DeliverFn deliver) override;
  void unregister_node(NodeId node) override;
  void send(NodeId from, NodeId to, Bytes payload) override;
  SimTime now() const override;
  void schedule(SimDuration delay, std::function<void()> callback) override;
  const sim::MessageStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

  /// Joins all background threads; idempotent.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    Clock::time_point at;
    std::uint64_t sequence;
    std::function<void()> run;
  };
  struct Later {
    bool operator()(const Job& a, const Job& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  void enqueue(Clock::time_point at, std::function<void()> run);
  void dispatch_loop();
  void accept_loop();
  void reader_loop(int fd);
  void deliver_local(NodeId from, NodeId to, Bytes payload);
  /// Returns a connected fd for the endpoint (cached), or -1.
  int outbound_fd(const TcpEndpoint& endpoint);

  const Clock::time_point start_ = Clock::now();
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::priority_queue<Job, std::vector<Job>, Later> jobs_;
  std::uint64_t next_sequence_ = 0;
  bool stopping_ = false;

  mutable std::mutex handlers_mutex_;
  std::unordered_map<NodeId, DeliverFn> handlers_;

  mutable std::mutex directory_mutex_;
  std::map<NodeId, TcpEndpoint> directory_;
  std::map<TcpEndpoint, int> outbound_;
  // Learned routes: a node that sent us a frame is reachable over that same
  // inbound connection — how servers answer clients on ephemeral ports
  // without a directory entry.
  std::map<NodeId, int> learned_;

  sim::MessageStats stats_;  // guarded by jobs_mutex_

  std::thread dispatcher_;
  std::thread acceptor_;
  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;
  std::vector<int> inbound_fds_;  // open inbound sockets, shut down on stop()
  bool accepting_ = true;         // guarded by readers_mutex_
};

}  // namespace securestore::net
