// TCP transport: the store over real sockets.
//
// Each process runs one TcpTransport: it listens on its own port, hosts any
// number of local nodes, and routes messages to remote nodes through a
// static endpoint map (NodeId -> host:port) — the deployment directory a
// real installation would distribute alongside the key directory.
//
// Wire framing per message (PROTOCOL.md §1a, all integers big-endian):
// u8 magic (0xC5) · u8 version (2) · u16 reserved (0) ·
// u32 length (8 + payload) · u32 from · u32 to · payload.
// Readers accept versions 1 and 2 (2 marks that payload envelopes may
// carry an optional trace-context field; the frame header is unchanged).
//
// Send path: `send()` never performs socket I/O. It frames the message and
// enqueues it on the destination connection's bounded send queue; a
// per-connection writer thread drains the queue and owns connect/reconnect
// with capped exponential backoff, entirely off the caller's path. A full
// queue or an unconnectable peer drops frames (counted in stats) — like
// the other transports, delivery is best-effort datagram semantics and the
// protocol timeouts handle loss.
//
// Receive path: reader threads (and the local-send fast path) push each
// message into the destination node's bounded lock-free DeliveryRing and
// wake the dispatcher at most once per burst; the dispatcher drains up to
// kMaxDeliveryBatch entries per wakeup and hands them to the node's batch
// handler in one call — the handoff that lets a server batch-verify
// signatures. This replaces the old one-dispatch-job-per-frame handoff
// through the jobs mutex.
//
// Threading model matches ThreadTransport: every delivery and scheduled
// callback runs on ONE dispatch thread, so protocol objects stay
// single-threaded. Initiate client operations via schedule(0, ...).
// Call stop() before destroying nodes registered on the transport.
// Messages undelivered at stop() — ring remnants, or sends racing the
// shutdown — are counted dropped, never silently discarded.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/ring.h"
#include "net/transport.h"

namespace securestore::net {

struct TcpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  bool operator==(const TcpEndpoint&) const = default;
  bool operator<(const TcpEndpoint& other) const {
    return std::tie(host, port) < std::tie(other.host, other.port);
  }
};

class TcpTransport final : public Transport {
 public:
  /// Binds and listens on `listen_port` (0 = pick an ephemeral port, see
  /// `port()`). `directory` maps every node in the deployment to its
  /// process's endpoint; nodes registered locally are delivered in-process.
  /// `registry` scopes this process's metrics; null = own a fresh one.
  /// `events` scopes the event log the same way.
  TcpTransport(std::uint16_t listen_port, std::map<NodeId, TcpEndpoint> directory,
               std::shared_ptr<obs::Registry> registry = nullptr,
               std::shared_ptr<obs::EventLog> events = nullptr);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// The actual listening port (after ephemeral resolution).
  std::uint16_t port() const { return port_; }

  /// Adds/updates directory entries (e.g. once an ephemeral peer port is
  /// known). Thread-safe.
  void set_endpoint(NodeId node, TcpEndpoint endpoint);

  void register_node(NodeId node, DeliverFn deliver) override;
  void register_node_batched(NodeId node, BatchDeliverFn deliver) override;
  void unregister_node(NodeId node) override;
  void send(NodeId from, NodeId to, Bytes payload) override;
  SimTime now() const override;
  void schedule(SimDuration delay, std::function<void()> callback) override;
  /// Delivery-ring occupancy of `node` (approximate; racing producers).
  std::size_t backlog(NodeId node) const override;
  const sim::TransportStats& stats() const override;
  void reset_stats() override;
  obs::Registry& registry() override { return *registry_; }
  obs::EventLog& events() override { return *events_; }

  /// Joins all background threads; idempotent.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    Clock::time_point at;
    std::uint64_t sequence;
    std::function<void()> run;
  };
  struct Later {
    bool operator()(const Job& a, const Job& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  /// A live socket. Held by shared_ptr from its reader and (while writing)
  /// its connection, so the fd is closed — and its number freed for reuse —
  /// only after every user is done with it. `shut()` is the cross-thread
  /// kill switch: safe while any holder is blocked in recv/send.
  struct Socket {
    explicit Socket(int fd) : fd(fd) {}
    ~Socket();
    void shut();
    const int fd;
  };

  /// One logical channel with its own writer thread and bounded send
  /// queue. Outbound channels (endpoint set) reconnect on failure; inbound
  /// channels (accepted sockets used for learned reply routes) close for
  /// good when their socket dies.
  struct Conn {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Bytes> queue;            // framed messages awaiting write
    std::atomic<bool> closed{false};    // terminal; set under mutex
    bool ever_connected = false;        // distinguishes connects from reconnects
    std::shared_ptr<Socket> sock;       // null while disconnected/reconnecting
    std::optional<TcpEndpoint> endpoint;  // outbound reconnect target
    std::thread writer;
  };

  /// One registered node's delivery state. Kept (as a tombstone with
  /// registered=false) after unregister_node so in-flight ring entries are
  /// still accounted.
  struct Endpoint {
    DeliveryRing ring;
    BatchDeliverFn deliver;           // guarded by handlers_mutex_
    bool registered = true;           // guarded by handlers_mutex_
    std::atomic<bool> drain_pending{false};
  };

  /// False when the transport is stopping (the job will never run).
  bool enqueue(Clock::time_point at, std::function<void()> run);
  void dispatch_loop();
  void accept_loop();
  void reader_loop(std::shared_ptr<Socket> sock, std::shared_ptr<Conn> conn);
  void writer_loop(std::shared_ptr<Conn> conn);
  /// Ring push + single dispatcher wake per burst; counts the drop itself
  /// on every failure path (no endpoint, ring full, ring closed).
  void deliver_local(NodeId from, NodeId to, Bytes payload);
  void drain_endpoint(const std::shared_ptr<Endpoint>& endpoint);
  std::shared_ptr<Endpoint> find_endpoint(NodeId node);
  /// Registers the socket and spawns its reader; false when stopping (the
  /// socket is then shut down and must not be used).
  bool start_reader(const std::shared_ptr<Conn>& conn, const std::shared_ptr<Socket>& sock);
  void enqueue_frame(const std::shared_ptr<Conn>& conn, Bytes frame);
  /// Drops every queued frame, counting them. Caller holds conn.mutex.
  void drop_queue(Conn& conn);
  void count_dropped(std::uint64_t n);

  const Clock::time_point start_ = Clock::now();
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::priority_queue<Job, std::vector<Job>, Later> jobs_;
  std::uint64_t next_sequence_ = 0;
  bool stopping_ = false;

  mutable std::mutex handlers_mutex_;
  std::unordered_map<NodeId, std::shared_ptr<Endpoint>> endpoints_;

  mutable std::mutex directory_mutex_;
  std::map<NodeId, TcpEndpoint> directory_;
  std::map<TcpEndpoint, std::shared_ptr<Conn>> outbound_;
  // Learned routes: a node that sent us a frame is reachable over that same
  // connection — how servers answer clients on ephemeral ports without a
  // directory entry.
  std::map<NodeId, std::shared_ptr<Conn>> learned_;
  bool closed_for_send_ = false;  // stop() in progress: no new connections

  sim::TransportStats stats_;              // guarded by jobs_mutex_
  mutable sim::TransportStats snapshot_;   // stats() return storage
  /// Per-snapshot ring-occupancy high-watermark; lock-free because it is
  /// recorded on every successful ring push (the hot path).
  std::atomic<std::uint64_t> ring_highwater_{0};
  std::shared_ptr<obs::Registry> registry_;
  std::shared_ptr<obs::EventLog> events_;
  std::uint64_t collector_id_ = 0;

  std::thread dispatcher_;
  std::thread acceptor_;
  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;
  std::vector<std::shared_ptr<Conn>> inbound_conns_;     // for stop() to close
  std::vector<std::weak_ptr<Socket>> sockets_;           // for stop() to shut down
  bool accepting_ = true;  // guarded by readers_mutex_
};

}  // namespace securestore::net
