// Bounded lock-free delivery ring — the hot-path handoff between transport
// producer threads (socket readers, senders) and the single dispatch thread
// that runs protocol code.
//
// Replaces the old per-message mutex-and-condvar handoff: producers publish
// a `Delivery` with two atomic ops (a slot claim and a sequence release),
// and the dispatcher drains up to K entries per wakeup, so one wakeup —
// and one downstream signature-verification batch — amortizes over every
// request that arrived while the dispatcher was busy.
//
// The design is the classic bounded MPMC ring with per-slot sequence
// numbers (Vyukov), used here as MPSC: any thread may push, only the
// dispatch thread drains. A full ring rejects the push (`kFull`) — the
// caller counts the drop, preserving the transports' datagram semantics —
// and `close()` turns every later push into an accounted `kClosed` so a
// send racing shutdown can never vanish without incrementing a counter.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/bytes.h"
#include "util/ids.h"

namespace securestore::net {

/// One queued message: transport-authenticated sender plus payload.
struct Delivery {
  NodeId from{};
  Bytes payload;
};

class DeliveryRing {
 public:
  enum class PushResult : std::uint8_t {
    kOk,      // published; the consumer will see it
    kFull,    // ring at capacity; caller must count the drop
    kClosed,  // close() ran; caller must count the drop
  };

  static constexpr std::size_t kDefaultCapacity = 1024;

  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit DeliveryRing(std::size_t capacity = kDefaultCapacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  DeliveryRing(const DeliveryRing&) = delete;
  DeliveryRing& operator=(const DeliveryRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer publish. Never blocks; `kOk` guarantees a subsequent
  /// drain (by the single consumer) returns the item.
  PushResult try_push(Delivery item) {
    // The pusher count lets close() wait out in-flight publishes, so after
    // close() returns, every successful push is visible to a final drain —
    // the exact-accounting guarantee shutdown relies on.
    pushers_.fetch_add(1, std::memory_order_acquire);
    if (closed_.load(std::memory_order_acquire)) {
      pushers_.fetch_sub(1, std::memory_order_release);
      return PushResult::kClosed;
    }
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.item = std::move(item);
          slot.sequence.store(pos + 1, std::memory_order_release);
          pushers_.fetch_sub(1, std::memory_order_release);
          return PushResult::kOk;
        }
      } else if (dif < 0) {
        pushers_.fetch_sub(1, std::memory_order_release);
        return PushResult::kFull;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer drain of up to `max` entries into `out` (appended).
  /// Returns how many were taken. Only the dispatch thread may call this.
  std::size_t drain(std::vector<Delivery>& out, std::size_t max) {
    std::size_t taken = 0;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    while (taken < max) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) < 0) break;
      out.push_back(std::move(slot.item));
      slot.item = Delivery{};  // free the payload now, not at wraparound
      slot.sequence.store(pos + capacity(), std::memory_order_release);
      ++pos;
      ++taken;
    }
    tail_.store(pos, std::memory_order_relaxed);
    return taken;
  }

  /// Approximate occupancy: slots claimed minus slots drained. Producers
  /// and the consumer race it, so it can be momentarily off by in-flight
  /// pushes — good enough for pressure signals and high-watermarks, never
  /// for exact accounting.
  std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    return head > tail ? static_cast<std::size_t>(head - tail) : 0;
  }

  /// Consumer-side emptiness check (also safe, but approximate, for
  /// producers — a concurrent push may not be visible yet).
  bool empty() const {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    const std::uint64_t seq = slots_[pos & mask_].sequence.load(std::memory_order_acquire);
    return static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) < 0;
  }

  /// Rejects all future pushes and waits for in-flight ones to finish:
  /// after close() returns, a final drain() observes every push that ever
  /// returned kOk. Idempotent.
  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    while (pushers_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> sequence{0};
    Delivery item;
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // producers: next claim
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // consumer: next take
  std::atomic<bool> closed_{false};
  std::atomic<std::uint32_t> pushers_{0};
};

}  // namespace securestore::net
