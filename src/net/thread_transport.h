// Real-time transport: wall-clock latencies, background dispatch thread.
//
// The simulator (SimTransport) gives deterministic virtual time; this
// transport runs the exact same protocol stack in *real* time — the
// "actual implementations" half of the paper's evaluation plan (§6). It
// models the network with the same LinkProfile sampling, but delays are
// slept through on a dispatch thread instead of skipped by a scheduler.
//
// Threading model: ALL deliveries and scheduled callbacks execute on one
// dispatch thread, serializing every protocol handler — the protocol
// objects themselves stay single-threaded, exactly as under the simulator.
// `send`/`schedule`/`register_node` may be called from any thread.
//
// Delivery hot path: each registered node owns a bounded lock-free
// DeliveryRing. A due message is pushed into the destination's ring (two
// atomic ops) and the dispatcher is woken at most once per burst — the
// first push into an idle ring schedules a drain job; subsequent pushes
// ride for free. The drain hands the batch (up to `max_batch`, default
// kMaxDeliveryBatch) to the node's handler in one call, which is what lets
// a server verify a whole batch of signatures per wakeup. This replaces
// the old per-message mutex-and-condvar handoff: the jobs mutex is now
// taken once per batch, not once per message.
//
// Shutdown: call `stop()` (joins the dispatch thread, drops pending jobs)
// BEFORE destroying servers/clients registered on the transport; pending
// jobs may otherwise run against destroyed objects. Messages undelivered
// at stop — queued jobs and ring remnants alike — are counted dropped, so
// messages_sent == messages_delivered + messages_dropped holds across a
// shutdown race.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>

#include "net/ring.h"
#include "net/transport.h"
#include "sim/network.h"

namespace securestore::net {

class ThreadTransport final : public Transport {
 public:
  /// `registry` scopes this deployment's metrics; null = own a fresh one.
  /// `events` scopes the event log the same way.
  explicit ThreadTransport(sim::NetworkModel network,
                           std::shared_ptr<obs::Registry> registry = nullptr,
                           std::shared_ptr<obs::EventLog> events = nullptr);
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  void register_node(NodeId node, DeliverFn deliver) override;
  void register_node_batched(NodeId node, BatchDeliverFn deliver) override;
  void unregister_node(NodeId node) override;
  void send(NodeId from, NodeId to, Bytes payload) override;
  /// Microseconds of wall-clock time since construction.
  SimTime now() const override;
  void schedule(SimDuration delay, std::function<void()> callback) override;
  /// Delivery-ring occupancy of `node` (approximate; racing producers).
  std::size_t backlog(NodeId node) const override;
  const sim::TransportStats& stats() const override {
    // Counters are written under jobs_mutex_ from caller and dispatch
    // threads; hand out a snapshot taken under the same lock. The ring
    // high-watermark lives in its own atomic (the successful-push path must
    // not take the mutex) and is folded in here.
    std::lock_guard lock(jobs_mutex_);
    snapshot_ = stats_;
    snapshot_.ring_occupancy_highwater = ring_highwater_.load(std::memory_order_relaxed);
    return snapshot_;
  }
  void reset_stats() override {
    std::lock_guard lock(jobs_mutex_);
    stats_.reset();
    ring_highwater_.store(0, std::memory_order_relaxed);
  }
  obs::Registry& registry() override { return *registry_; }
  obs::EventLog& events() override { return *events_; }

  /// Joins the dispatch thread; idempotent. Undelivered messages (queued
  /// jobs, ring remnants) are counted as dropped.
  void stop();

  /// Caps how many pending messages one drain hands a batch handler.
  /// Clamped to [1, kMaxDeliveryBatch]; 1 disables batching (benches A/B
  /// the verify pipeline with this).
  void set_max_batch(std::size_t n);

  sim::NetworkModel& network() { return network_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    Clock::time_point at;
    std::uint64_t sequence;
    std::function<void()> run;
    bool delivery = false;  // carries a message: dropping it must be counted
  };
  struct Later {
    bool operator()(const Job& a, const Job& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  /// One registered node's delivery state. Kept (as a tombstone with
  /// registered=false) after unregister_node so in-flight ring entries are
  /// still accounted.
  struct Endpoint {
    DeliveryRing ring;
    BatchDeliverFn deliver;           // guarded by handlers_mutex_
    bool registered = true;           // guarded by handlers_mutex_
    std::atomic<bool> drain_pending{false};
  };

  /// False when the transport is stopping (the job will never run).
  bool enqueue(Clock::time_point at, std::function<void()> run, bool delivery = false);
  void dispatch_loop();
  void deliver_to_ring(NodeId from, NodeId to, Bytes payload);
  void drain_endpoint(const std::shared_ptr<Endpoint>& endpoint);

  const Clock::time_point start_ = Clock::now();

  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::priority_queue<Job, std::vector<Job>, Later> jobs_;
  std::uint64_t next_sequence_ = 0;
  bool stopping_ = false;

  mutable std::mutex handlers_mutex_;
  std::unordered_map<NodeId, std::shared_ptr<Endpoint>> endpoints_;

  sim::NetworkModel network_;  // guarded by jobs_mutex_ (rng state)
  sim::TransportStats stats_;  // guarded by jobs_mutex_
  mutable sim::TransportStats snapshot_;  // stats() return storage
  /// Per-snapshot ring-occupancy high-watermark; lock-free because it is
  /// recorded on every successful ring push (the hot path).
  std::atomic<std::uint64_t> ring_highwater_{0};
  std::atomic<std::size_t> max_batch_{kMaxDeliveryBatch};

  std::shared_ptr<obs::Registry> registry_;
  std::shared_ptr<obs::EventLog> events_;
  std::uint64_t collector_id_ = 0;

  std::thread dispatcher_;
};

}  // namespace securestore::net
