#include "net/rpc.h"

#include "util/rng.h"

namespace securestore::net {

namespace {

// Envelope kind byte (PROTOCOL.md §1b): low 7 bits are the Kind, the high
// bit marks an optional trace-context field — `u8 length · context bytes` —
// inserted between the kind byte and the rpc id. Old-format envelopes have
// the bit clear and parse exactly as before.
constexpr std::uint8_t kTraceFlag = 0x80;

}  // namespace

RpcNode::RpcNode(Transport& transport, NodeId id)
    : transport_(transport),
      id_(id),
      expired_responses_(transport.registry().counter("rpc.response_expired")),
      misdirected_responses_(transport.registry().counter("rpc.response_misdirected")),
      malformed_dropped_(transport.registry().counter("rpc.malformed_dropped")),
      trace_ctx_malformed_(transport.registry().counter("rpc.trace_ctx_malformed")) {
  // Random 63-bit starting id: response matching also checks the sender,
  // but unguessable ids deny a Byzantine peer even the chance to race a
  // forged reply for an rpc it never saw. The top bit stays clear so the
  // counter cannot wrap within any conceivable session.
  next_rpc_id_ = (Rng(system_entropy_seed()).next_u64() >> 1) | 1;
  // Batched registration: transports with native batching hand every
  // message pending at one dispatch wakeup to deliver_batch in a single
  // call; the rest adapt through batches of one. Either way the node sees
  // messages in arrival order on the dispatch thread.
  transport_.register_node_batched(
      id_, [this](std::vector<Delivery>& batch) { deliver_batch(batch); });
}

RpcNode::~RpcNode() { transport_.unregister_node(id_); }

std::uint64_t RpcNode::send_request(NodeId to, MsgType type, Bytes body, ResponseFn on_response,
                                    const obs::TraceContext& trace) {
  const std::uint64_t rpc_id = next_rpc_id_++;
  pending_[rpc_id] = PendingRpc{to, std::move(on_response)};

  Writer w;
  if (trace.valid()) {
    w.u8(static_cast<std::uint8_t>(Kind::kRequest) | kTraceFlag);
    w.u8(static_cast<std::uint8_t>(obs::TraceContext::kWireSize));
    trace.encode(w);
  } else {
    w.u8(static_cast<std::uint8_t>(Kind::kRequest));
  }
  w.u64(rpc_id);
  w.u16(static_cast<std::uint16_t>(type));
  w.raw(body);
  transport_.send(id_, to, w.take());
  return rpc_id;
}

void RpcNode::cancel(std::uint64_t rpc_id) { pending_.erase(rpc_id); }

void RpcNode::send_oneway(NodeId to, MsgType type, Bytes body, const obs::TraceContext& trace) {
  Writer w;
  if (trace.valid()) {
    w.u8(static_cast<std::uint8_t>(Kind::kOneway) | kTraceFlag);
    w.u8(static_cast<std::uint8_t>(obs::TraceContext::kWireSize));
    trace.encode(w);
  } else {
    w.u8(static_cast<std::uint8_t>(Kind::kOneway));
  }
  w.u64(0);
  w.u16(static_cast<std::uint16_t>(type));
  w.raw(body);
  transport_.send(id_, to, w.take());
}

std::optional<RpcNode::Parsed> RpcNode::parse_envelope(BytesView payload) {
  Parsed out;
  try {
    Reader r(payload);
    const std::uint8_t kind_byte = r.u8();
    out.kind = static_cast<Kind>(kind_byte & ~kTraceFlag);
    if ((kind_byte & kTraceFlag) != 0) {
      // Optional trace-context field. The context is advisory metadata from
      // an untrusted peer: a bad length or an invalid context is counted
      // and STRIPPED (the message itself still processes normally when the
      // body boundary is recoverable), and unknown flag bits are cleared —
      // the one thing a Byzantine peer may influence is the parentage of
      // spans explicitly attributed to its own messages.
      const std::size_t length = r.u8();
      if (length < obs::TraceContext::kWireSize || length > obs::TraceContext::kMaxWireSize) {
        trace_ctx_malformed_.inc();
        if (length > r.remaining()) throw DecodeError("trace ctx length");
        (void)r.raw(length);  // strip; body boundary still known
      } else {
        if (length > r.remaining()) {
          trace_ctx_malformed_.inc();
          throw DecodeError("trace ctx length");
        }
        obs::TraceContext decoded = obs::TraceContext::decode(r);
        (void)r.raw(length - obs::TraceContext::kWireSize);  // future extensions
        decoded.flags &= obs::TraceContext::kSampledFlag;
        if (decoded.valid()) {
          out.trace = decoded;
        } else {
          trace_ctx_malformed_.inc();
        }
      }
    }
    out.rpc_id = r.u64();
    out.type = static_cast<MsgType>(r.u16());
    out.body = r.raw(r.remaining());
  } catch (const DecodeError&) {
    // Malformed datagram: drop, exactly like garbage off the wire — but
    // count it, since a burst of garbage is worth seeing in a dump.
    malformed_dropped_.inc();
    return std::nullopt;
  }
  return out;
}

void RpcNode::handle_response(NodeId from, const Parsed& msg) {
  const auto it = pending_.find(msg.rpc_id);
  if (it == pending_.end()) {
    // Late/duplicate/forged-for-an-unknown-id: ignore, but record —
    // expired responses are exactly the slow-server evidence the
    // bench/ops dumps want to correlate with timeouts.
    expired_responses_.inc();
    return;
  }
  // Reply binding: only the node the request was sent to may answer
  // it. A spoofed response from anyone else is dropped WITHOUT
  // consuming the pending rpc, so the real reply still gets through.
  if (it->second.target != from) {
    misdirected_responses_.inc();
    return;
  }
  ResponseFn callback = std::move(it->second.on_response);
  pending_.erase(it);
  callback(from, msg.type, msg.body);
}

void RpcNode::deliver(NodeId from, BytesView payload) {
  auto parsed = parse_envelope(payload);
  if (!parsed.has_value()) return;
  Parsed& msg = *parsed;

  switch (msg.kind) {
    case Kind::kRequest: {
      if (!request_handler_) return;
      incoming_trace_ = msg.trace;
      const auto response = request_handler_(from, msg.type, msg.body);
      incoming_trace_ = obs::TraceContext{};
      if (!response.has_value()) return;
      Writer w;
      w.u8(static_cast<std::uint8_t>(Kind::kResponse));
      w.u64(msg.rpc_id);
      w.u16(static_cast<std::uint16_t>(response->first));
      w.raw(response->second);
      transport_.send(id_, from, w.take());
      return;
    }
    case Kind::kResponse:
      handle_response(from, msg);
      return;
    case Kind::kOneway: {
      if (!oneway_handler_) return;
      incoming_trace_ = msg.trace;
      oneway_handler_(from, msg.type, msg.body);
      incoming_trace_ = obs::TraceContext{};
      return;
    }
  }
}

void RpcNode::deliver_batch(std::vector<Delivery>& batch) {
  if (!batch_request_handler_) {
    // No batch handler installed: process each message exactly as the
    // per-message path always has.
    for (Delivery& d : batch) deliver(d.from, d.payload);
    return;
  }

  // Requests are lifted out of the batch and handed to the batch handler
  // in one call (so the server can batch-verify their signatures);
  // responses and one-ways are processed inline, in arrival order, before
  // the request group. Reordering a response ahead of a request from the
  // same wakeup is harmless: they address independent state (pending rpc
  // table vs server handlers).
  std::vector<IncomingRequest> requests;
  std::vector<std::uint64_t> rpc_ids;
  for (Delivery& d : batch) {
    auto parsed = parse_envelope(d.payload);
    if (!parsed.has_value()) continue;
    Parsed& msg = *parsed;
    switch (msg.kind) {
      case Kind::kRequest:
        requests.push_back(
            IncomingRequest{d.from, msg.type, std::move(msg.body), msg.trace});
        rpc_ids.push_back(msg.rpc_id);
        break;
      case Kind::kResponse:
        handle_response(d.from, msg);
        break;
      case Kind::kOneway:
        if (oneway_handler_) {
          incoming_trace_ = msg.trace;
          oneway_handler_(d.from, msg.type, msg.body);
          incoming_trace_ = obs::TraceContext{};
        }
        break;
    }
  }
  if (requests.empty()) return;

  auto responses = batch_request_handler_(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // A short result vector means "no response" for the tail — same
    // semantics as a nullopt entry.
    if (i >= responses.size() || !responses[i].has_value()) continue;
    Writer w;
    w.u8(static_cast<std::uint8_t>(Kind::kResponse));
    w.u64(rpc_ids[i]);
    w.u16(static_cast<std::uint16_t>(responses[i]->first));
    w.raw(responses[i]->second);
    transport_.send(id_, requests[i].from, w.take());
  }
}

}  // namespace securestore::net
