#include "net/quorum.h"

#include <set>

namespace securestore::net {

namespace {

struct CallState {
  RpcNode* node = nullptr;
  QuorumCall::ReplyFn on_reply;
  QuorumCall::DoneFn on_done;
  std::vector<std::uint64_t> rpc_ids;
  /// Distinct servers heard from. The quorum tally counts responders, not
  /// responses: a replayed/duplicated reply from a server that already
  /// answered (or one node appearing twice in `targets`) must not advance
  /// the count, or b faulty servers could fake a quorum of b+1.
  std::set<NodeId> responders;
  std::size_t targets = 0;
  bool finished = false;

  void finish(QuorumOutcome outcome) {
    if (finished) return;
    finished = true;
    for (const std::uint64_t id : rpc_ids) node->cancel(id);
    // Move the callback out so `this` (held via shared_ptr in callbacks)
    // can release captured resources promptly.
    QuorumCall::DoneFn done = std::move(on_done);
    done(outcome, responders.size());
  }
};

}  // namespace

void QuorumCall::start(RpcNode& node, const std::vector<NodeId>& targets, MsgType type,
                       const Bytes& body, ReplyFn on_reply, DoneFn on_done,
                       Options options) {
  auto state = std::make_shared<CallState>();
  state->node = &node;
  state->on_reply = std::move(on_reply);
  state->on_done = std::move(on_done);
  // Exhaustion means "every distinct target answered" — duplicates in the
  // target list get their own rpc but can never add a second tally.
  state->targets = std::set<NodeId>(targets.begin(), targets.end()).size();

  if (targets.empty()) {
    state->finish(QuorumOutcome::kExhausted);
    return;
  }

  state->rpc_ids.reserve(targets.size());
  for (const NodeId target : targets) {
    // A reply delivered synchronously inside send_request can finish the
    // call mid-loop; finish() only cancels the rpc_ids recorded so far, so
    // stop sending and never record (or leak) anything past that point.
    if (state->finished) break;
    const std::uint64_t rpc_id = node.send_request(
        target, type, body,
        [state](NodeId from, MsgType response_type, BytesView response_body) {
          if (state->finished) return;
          if (!state->responders.insert(from).second) return;  // already counted
          if (state->on_reply(from, response_type, response_body)) {
            state->finish(QuorumOutcome::kSatisfied);
          } else if (state->responders.size() == state->targets) {
            state->finish(QuorumOutcome::kExhausted);
          }
        },
        options.trace);
    if (state->finished) {
      node.cancel(rpc_id);  // this very request's reply finished the call
    } else {
      state->rpc_ids.push_back(rpc_id);
    }
  }

  if (state->finished) return;

  // The timer holds only a weak reference: once the call is satisfied the
  // state (and every captured buffer in its callbacks) is released
  // immediately instead of being pinned for the full timeout. Until then
  // the pending response callbacks keep the state alive.
  node.transport().schedule(options.timeout, [weak = std::weak_ptr<CallState>(state)]() {
    if (const auto state = weak.lock()) state->finish(QuorumOutcome::kTimeout);
  });
}

}  // namespace securestore::net
