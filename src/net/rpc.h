// Request/response correlation over the datagram transport.
//
// Every protocol interaction in the paper is "client asks k servers, waits
// for replies". `RpcNode` gives each participant a typed request/response
// endpoint: requests carry an rpc id echoed by the response; one-way
// messages (gossip) use `send_oneway`. Responses for unknown/expired rpc
// ids are dropped, so late or duplicated replies from slow or malicious
// servers are harmless — but never invisibly: every such drop lands in the
// transport's metrics registry (`rpc.response_expired`,
// `rpc.response_misdirected`, `rpc.malformed_dropped`), so a flood of late
// or spoofed replies shows up in dumps instead of vanishing.
//
// Reply binding: every pending rpc remembers which node it was sent to,
// and a response is accepted only when its transport-level sender matches
// that target — a Byzantine server cannot answer for an honest one (the
// paper's P1–P6 all count replies from *specific* servers). Rpc ids start
// at a random 63-bit value per node so they are not trivially guessable
// by a peer that has not seen the request.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "util/serial.h"

namespace securestore::net {

/// Message type tags. One flat space across protocols keeps the envelope
/// trivial; handlers dispatch on the value.
enum class MsgType : std::uint16_t {
  // Secure store (core protocols)
  kContextRead = 1,
  kContextWrite = 2,
  kMetaRequest = 3,   // timestamp query, first phase of Fig. 2 read
  kRead = 4,          // value fetch from the chosen server
  kWrite = 5,
  kLogRead = 6,       // multi-writer: request the recent-writes log
  kReconstruct = 7,   // context reconstruction: all timestamps in a group
  kStability = 8,     // stability certificate for log garbage collection
  kAuditRead = 9,     // fetch the server's hash-chained audit log
  // Gossip
  kGossipDigest = 20,
  kGossipUpdates = 21,
  kGossipRequest = 22,
  kGossipRing = 23,   // signed ring state (shard membership, PROTOCOL.md §10)
  // Masking-quorum baseline
  kMqRead = 30,
  kMqWrite = 31,
  kMqTimestamp = 32,
  // PBFT-lite baseline
  kPbftRequest = 40,
  kPbftPrePrepare = 41,
  kPbftPrepare = 42,
  kPbftCommit = 43,
  kPbftReply = 44,
  // Generic
  kAck = 100,
  kError = 101,
  kWrongShard = 102,  // misrouted request; body is the server's signed ring
  kOverloaded = 103,  // admission control shed the request; body is a signed
                      // retry-after hint (PROTOCOL.md §12)
  // Introspection (PROTOCOL.md §13): unauthenticated but rate-limited
  // health/metrics exposition; response body format is chosen by the
  // request (binary status, Prometheus text, JSON, recent events).
  kIntrospect = 110,
};

/// One request lifted out of a delivery batch for batched handling: the
/// transport-authenticated sender, the decoded envelope fields, and the
/// sanitized trace context it carried.
struct IncomingRequest {
  NodeId from{};
  MsgType type{};
  Bytes body;
  obs::TraceContext trace{};
};

class RpcNode {
 public:
  /// Response callback: sender, response type, body.
  using ResponseFn = std::function<void(NodeId from, MsgType type, BytesView body)>;
  /// Request handler: returns the response (type, body), or nullopt for no
  /// response (the rpc will time out at the caller — how a server "chooses
  /// not to respond").
  using RequestHandler =
      std::function<std::optional<std::pair<MsgType, Bytes>>(NodeId from, MsgType type, BytesView body)>;
  /// Batched request handler: every request the transport had pending at
  /// one dispatch wakeup, in arrival order. Returns one entry per request
  /// (index-aligned; nullopt = stay silent). Servers install this to
  /// amortize per-request costs — one Ed25519 batch verification per
  /// wakeup instead of one scalar verification per request.
  using BatchRequestHandler = std::function<std::vector<std::optional<std::pair<MsgType, Bytes>>>(
      std::vector<IncomingRequest>& batch)>;
  /// One-way handler (gossip and other unsolicited messages).
  using OnewayHandler = std::function<void(NodeId from, MsgType type, BytesView body)>;

  RpcNode(Transport& transport, NodeId id);
  ~RpcNode();

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  NodeId id() const { return id_; }
  Transport& transport() { return transport_; }
  const Transport& transport() const { return transport_; }

  void set_request_handler(RequestHandler handler) { request_handler_ = std::move(handler); }
  /// When set, requests arriving in one transport delivery batch are handed
  /// to this handler in a single call instead of one `RequestHandler` call
  /// each. Responses and one-ways in the same batch are still processed
  /// individually, in arrival order relative to the requests around them.
  void set_batch_request_handler(BatchRequestHandler handler) {
    batch_request_handler_ = std::move(handler);
  }
  void set_oneway_handler(OnewayHandler handler) { oneway_handler_ = std::move(handler); }

  /// Sends a request; `on_response` fires at most once when the matching
  /// response arrives. Returns the rpc id (for cancel). A valid `trace`
  /// context rides along in the envelope (PROTOCOL.md §1b) so the
  /// receiver's spans link back to the originating operation; responses
  /// never carry one.
  std::uint64_t send_request(NodeId to, MsgType type, Bytes body, ResponseFn on_response,
                             const obs::TraceContext& trace = {});

  /// Drops interest in a pending rpc; a late response is ignored.
  void cancel(std::uint64_t rpc_id);

  /// Fire-and-forget message.
  void send_oneway(NodeId to, MsgType type, Bytes body, const obs::TraceContext& trace = {});

  /// The (sanitized) trace context of the message whose request/oneway
  /// handler is currently executing; invalid outside handler invocation.
  /// Handlers parent their server-side spans to this. Never trusted
  /// blindly: malformed or oversized contexts are counted
  /// (`rpc.trace_ctx_malformed`) and stripped before the handler runs, and
  /// unknown flag bits are cleared, so a Byzantine peer cannot inflate
  /// another node's event log beyond well-formed parentage claims.
  const obs::TraceContext& incoming_trace() const { return incoming_trace_; }

  /// Number of requests still awaiting a response (diagnostics/tests: a
  /// well-behaved caller cancels what it stops waiting for, so this should
  /// return to zero between operations).
  std::size_t pending_count() const { return pending_.size(); }

 private:
  enum class Kind : std::uint8_t { kRequest = 0, kResponse = 1, kOneway = 2 };

  struct PendingRpc {
    NodeId target;  // only this node's response is accepted
    ResponseFn on_response;
  };

  /// A decoded envelope. `kind == kRequest` payloads also carry `rpc_id`;
  /// responses carry the id they answer; one-ways ignore it.
  struct Parsed {
    Kind kind{};
    std::uint64_t rpc_id = 0;
    MsgType type{};
    Bytes body;
    obs::TraceContext trace{};
  };

  /// Envelope decode + trace sanitation shared by the single and batched
  /// delivery paths. nullopt = malformed (already counted).
  std::optional<Parsed> parse_envelope(BytesView payload);

  void deliver(NodeId from, BytesView payload);
  void deliver_batch(std::vector<Delivery>& batch);
  void handle_response(NodeId from, const Parsed& msg);

  Transport& transport_;
  NodeId id_;
  std::uint64_t next_rpc_id_;  // randomized at construction
  std::unordered_map<std::uint64_t, PendingRpc> pending_;
  RequestHandler request_handler_;
  BatchRequestHandler batch_request_handler_;
  OnewayHandler oneway_handler_;
  obs::TraceContext incoming_trace_{};
  // Invisible-drop accounting (handles into transport().registry()).
  obs::Counter& expired_responses_;
  obs::Counter& misdirected_responses_;
  obs::Counter& malformed_dropped_;
  obs::Counter& trace_ctx_malformed_;
};

}  // namespace securestore::net
