// Transport implementation on top of the discrete-event simulator.
//
// Batched delivery under determinism: messages arriving for the same node
// at the same simulated instant are coalesced into one batch handler call
// (up to kMaxDeliveryBatch per flush event). Arrival events only append to
// the node's pending list; a single flush event — scheduled when the list
// goes non-empty, and therefore strictly after every same-timestamp
// arrival in scheduler order — drains it. The coalescing is a pure
// function of the event sequence, so seeded runs stay reproducible.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace securestore::net {

class SimTransport final : public Transport {
 public:
  /// `registry` scopes this deployment's metrics; null makes the transport
  /// own a fresh one. Benches pass one shared registry into every cluster
  /// of a sweep so the cells accumulate into a single dump. `events` scopes
  /// the event log the same way (null = own a fresh, disabled one).
  SimTransport(sim::Scheduler& scheduler, sim::NetworkModel network,
               std::shared_ptr<obs::Registry> registry = nullptr,
               std::shared_ptr<obs::EventLog> events = nullptr);
  ~SimTransport() override;

  void register_node(NodeId node, DeliverFn deliver) override;
  void register_node_batched(NodeId node, BatchDeliverFn deliver) override;
  void unregister_node(NodeId node) override;
  void send(NodeId from, NodeId to, Bytes payload) override;
  SimTime now() const override { return scheduler_.now(); }
  void schedule(SimDuration delay, std::function<void()> callback) override;
  /// Modeled inbound queue depth at `node`: messages still in the service
  /// queue (busy_until ahead of now) plus same-instant arrivals awaiting
  /// flush. The simulator has no delivery ring — this is its equivalent
  /// pressure signal for admission control.
  std::size_t backlog(NodeId node) const override;
  void refund_service(NodeId node) override;
  const sim::TransportStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }
  obs::Registry& registry() override { return *registry_; }
  obs::EventLog& events() override { return *events_; }

  sim::NetworkModel& network() { return network_; }
  sim::Scheduler& scheduler() { return scheduler_; }

  /// Models a per-message service (CPU) cost at `node`: arrivals wait in a
  /// FIFO pickup queue and the node's CPU picks one up every `per_message`,
  /// so a loaded node's queue grows and its effective throughput caps at
  /// 1/per_message. Zero (the default) disables the model; resetting to
  /// zero hands anything still queued straight to delivery. A shed pickup
  /// is refunded (`refund_service`): the next pickup rides free, so a
  /// refusing node drains its queue at refusal speed, not processing
  /// speed. Benches use this to make server capacity — not network latency
  /// — the bottleneck, so saturation effects are measurable in virtual
  /// time on any host.
  void set_service_time(NodeId node, SimDuration per_message);

 private:
  struct Endpoint {
    BatchDeliverFn deliver;
    std::vector<Delivery> pending;  // same-instant arrivals awaiting flush
    bool flush_scheduled = false;
    SimDuration service_time = 0;  // per-message CPU cost (0 = infinite capacity)
    std::deque<Delivery> service_queue;  // arrivals awaiting a CPU pickup
    bool service_active = false;         // a pickup event is scheduled
    std::uint64_t service_epoch = 0;     // orphans pickups across reconfigures
    std::uint64_t service_credits = 0;   // refunded slots: free next pickups
  };

  void arrive(NodeId from, NodeId to, Bytes payload);
  void service_step(NodeId to, std::uint64_t epoch);
  void enqueue(NodeId from, NodeId to, Bytes payload);
  void flush(NodeId to);

  sim::Scheduler& scheduler_;
  sim::NetworkModel network_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  sim::TransportStats stats_;
  std::shared_ptr<obs::Registry> registry_;
  std::shared_ptr<obs::EventLog> events_;
  std::uint64_t collector_id_ = 0;
};

}  // namespace securestore::net
