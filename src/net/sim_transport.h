// Transport implementation on top of the discrete-event simulator.
//
// Batched delivery under determinism: messages arriving for the same node
// at the same simulated instant are coalesced into one batch handler call
// (up to kMaxDeliveryBatch per flush event). Arrival events only append to
// the node's pending list; a single flush event — scheduled when the list
// goes non-empty, and therefore strictly after every same-timestamp
// arrival in scheduler order — drains it. The coalescing is a pure
// function of the event sequence, so seeded runs stay reproducible.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace securestore::net {

class SimTransport final : public Transport {
 public:
  /// `registry` scopes this deployment's metrics; null makes the transport
  /// own a fresh one. Benches pass one shared registry into every cluster
  /// of a sweep so the cells accumulate into a single dump. `events` scopes
  /// the event log the same way (null = own a fresh, disabled one).
  SimTransport(sim::Scheduler& scheduler, sim::NetworkModel network,
               std::shared_ptr<obs::Registry> registry = nullptr,
               std::shared_ptr<obs::EventLog> events = nullptr);
  ~SimTransport() override;

  void register_node(NodeId node, DeliverFn deliver) override;
  void register_node_batched(NodeId node, BatchDeliverFn deliver) override;
  void unregister_node(NodeId node) override;
  void send(NodeId from, NodeId to, Bytes payload) override;
  SimTime now() const override { return scheduler_.now(); }
  void schedule(SimDuration delay, std::function<void()> callback) override;
  const sim::TransportStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }
  obs::Registry& registry() override { return *registry_; }
  obs::EventLog& events() override { return *events_; }

  sim::NetworkModel& network() { return network_; }
  sim::Scheduler& scheduler() { return scheduler_; }

  /// Models a per-message service (CPU) cost at `node`: each arriving
  /// message occupies the node for `per_message` before it is delivered,
  /// queueing FIFO behind earlier arrivals still in service. Zero (the
  /// default) disables the model. Benches use this to make server capacity
  /// — not network latency — the bottleneck, so scale-out effects are
  /// measurable in virtual time on any host.
  void set_service_time(NodeId node, SimDuration per_message);

 private:
  struct Endpoint {
    BatchDeliverFn deliver;
    std::vector<Delivery> pending;  // same-instant arrivals awaiting flush
    bool flush_scheduled = false;
    SimDuration service_time = 0;  // per-message CPU cost (0 = infinite capacity)
    SimTime busy_until = 0;        // when the in-service queue drains
  };

  void arrive(NodeId from, NodeId to, Bytes payload);
  void enqueue(NodeId from, NodeId to, Bytes payload);
  void flush(NodeId to);

  sim::Scheduler& scheduler_;
  sim::NetworkModel network_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  sim::TransportStats stats_;
  std::shared_ptr<obs::Registry> registry_;
  std::shared_ptr<obs::EventLog> events_;
  std::uint64_t collector_id_ = 0;
};

}  // namespace securestore::net
