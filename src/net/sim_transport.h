// Transport implementation on top of the discrete-event simulator.
#pragma once

#include <memory>
#include <unordered_map>

#include "net/transport.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace securestore::net {

class SimTransport final : public Transport {
 public:
  SimTransport(sim::Scheduler& scheduler, sim::NetworkModel network)
      : scheduler_(scheduler), network_(std::move(network)) {}

  void register_node(NodeId node, DeliverFn deliver) override;
  void unregister_node(NodeId node) override;
  void send(NodeId from, NodeId to, Bytes payload) override;
  SimTime now() const override { return scheduler_.now(); }
  void schedule(SimDuration delay, std::function<void()> callback) override;
  const sim::TransportStats& stats() const override { return stats_; }
  void reset_stats() override { stats_.reset(); }

  sim::NetworkModel& network() { return network_; }
  sim::Scheduler& scheduler() { return scheduler_; }

 private:
  sim::Scheduler& scheduler_;
  sim::NetworkModel network_;
  std::unordered_map<NodeId, DeliverFn> handlers_;
  sim::TransportStats stats_;
};

}  // namespace securestore::net
