#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace securestore::net {

namespace {

/// Reads exactly n bytes; false on EOF/error.
bool read_all(int fd, void* buffer, std::size_t n) {
  auto* out = static_cast<std::uint8_t*>(buffer);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const void* buffer, std::size_t n) {
  const auto* in = static_cast<const std::uint8_t*>(buffer);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, in + sent, n - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

// Frame header (PROTOCOL.md §1a): magic · version · reserved(2) ·
// be32 length · be32 from · be32 to. `length` counts from+to+payload.
constexpr std::uint8_t kFrameMagic = 0xC5;
// Version 2 (PROTOCOL.md §1a): payload envelopes may carry an optional
// trace-context field. The frame header itself is unchanged, so readers
// accept both versions; we emit the current one.
constexpr std::uint8_t kFrameVersion = 2;
constexpr std::uint8_t kMinFrameVersion = 1;
constexpr std::size_t kHeaderSize = 16;
constexpr std::uint32_t kMaxFrame = 64 * 1024 * 1024;

// Send-path bounds: per-connection queue cap and reconnect backoff.
constexpr std::size_t kMaxQueueFrames = 1024;
constexpr int kMinBackoffMs = 10;
constexpr int kMaxBackoffMs = 2000;

void store_be32(std::uint8_t* out, std::uint32_t value) {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value);
}

std::uint32_t load_be32(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) | (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) | static_cast<std::uint32_t>(in[3]);
}

Bytes encode_frame(NodeId from, NodeId to, const Bytes& payload) {
  Bytes frame(kHeaderSize + payload.size());
  frame[0] = kFrameMagic;
  frame[1] = kFrameVersion;
  frame[2] = 0;
  frame[3] = 0;
  store_be32(frame.data() + 4, static_cast<std::uint32_t>(8 + payload.size()));
  store_be32(frame.data() + 8, from.value);
  store_be32(frame.data() + 12, to.value);
  std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  return frame;
}

/// Blocking connect to the endpoint; -1 on failure. Loopback connects
/// resolve immediately (accept or ECONNREFUSED), so the writer thread is
/// never stuck here long — and it runs off every send path regardless.
int try_connect(const TcpEndpoint& endpoint) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &address.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

TcpTransport::Socket::~Socket() { ::close(fd); }

void TcpTransport::Socket::shut() { ::shutdown(fd, SHUT_RDWR); }

TcpTransport::TcpTransport(std::uint16_t listen_port, std::map<NodeId, TcpEndpoint> directory,
                           std::shared_ptr<obs::Registry> registry,
                           std::shared_ptr<obs::EventLog> events)
    : directory_(std::move(directory)),
      registry_(registry != nullptr ? std::move(registry)
                                    : std::make_shared<obs::Registry>()),
      events_(events != nullptr ? std::move(events) : std::make_shared<obs::EventLog>()) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bind() failed");
  }
  socklen_t length = sizeof(address);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: listen() failed");
  }

  // Last: a throw above must not leave a collector pointing at a dead
  // transport inside an injected (longer-lived) registry.
  collector_id_ = registry_->add_collector([this](obs::Registry& r) {
    fold_transport_stats(r, stats());
    // The high-watermark is a per-snapshot signal: reset after folding so
    // successive snapshots show the pressure ramp, not one all-time peak.
    ring_highwater_.store(0, std::memory_order_relaxed);
  });

  dispatcher_ = std::thread([this] { dispatch_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpTransport::~TcpTransport() {
  stop();
  registry_->remove_collector(collector_id_);
}

void TcpTransport::stop() {
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  jobs_cv_.notify_all();
  // Shut the listener down; accept() returns and the acceptor exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);

  // Collect every connection, barring new ones, then close them all:
  // writers wake up and exit, readers are unblocked via socket shutdown.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard lock(directory_mutex_);
    closed_for_send_ = true;
    for (auto& [endpoint, conn] : outbound_) conns.push_back(conn);
    outbound_.clear();
    learned_.clear();
  }
  {
    std::lock_guard lock(readers_mutex_);
    accepting_ = false;
    for (auto& conn : inbound_conns_) conns.push_back(conn);
    inbound_conns_.clear();
    for (auto& weak : sockets_) {
      if (const auto sock = weak.lock()) sock->shut();
    }
  }
  for (auto& conn : conns) {
    {
      std::lock_guard lock(conn->mutex);
      conn->closed = true;
    }
    conn->cv.notify_all();
  }

  if (acceptor_.joinable()) acceptor_.join();
  for (auto& conn : conns) {
    if (conn->writer.joinable()) conn->writer.join();
  }
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(readers_mutex_);
    to_join = std::move(readers_);
    readers_.clear();
  }
  for (std::thread& reader : to_join) {
    if (reader.joinable()) reader.join();
  }
  if (dispatcher_.joinable()) dispatcher_.join();

  // Every delivery that made it into a ring but never reached its handler
  // is accounted here; sends racing this shutdown observe the closed ring
  // and count their own drop. Either way, nothing vanishes silently.
  std::vector<std::shared_ptr<Endpoint>> endpoints;
  {
    std::lock_guard lock(handlers_mutex_);
    for (auto& [node, endpoint] : endpoints_) endpoints.push_back(endpoint);
  }
  std::uint64_t undelivered = 0;
  std::vector<Delivery> rest;
  for (const auto& endpoint : endpoints) {
    endpoint->ring.close();
    rest.clear();
    while (endpoint->ring.drain(rest, kMaxDeliveryBatch) != 0) {
      undelivered += rest.size();
      rest.clear();
    }
  }
  if (undelivered != 0) count_dropped(undelivered);
}

void TcpTransport::set_endpoint(NodeId node, TcpEndpoint endpoint) {
  std::lock_guard lock(directory_mutex_);
  directory_[node] = std::move(endpoint);
}

void TcpTransport::register_node(NodeId node, DeliverFn deliver) {
  register_node_batched(node, [fn = std::move(deliver)](std::vector<Delivery>& batch) {
    for (Delivery& d : batch) fn(d.from, d.payload);
  });
}

void TcpTransport::register_node_batched(NodeId node, BatchDeliverFn deliver) {
  std::lock_guard lock(handlers_mutex_);
  auto& endpoint = endpoints_[node];
  if (endpoint == nullptr) endpoint = std::make_shared<Endpoint>();
  endpoint->deliver = std::move(deliver);
  endpoint->registered = true;
}

void TcpTransport::unregister_node(NodeId node) {
  // Tombstone, not erase: in-flight ring entries still get drained — and
  // counted dropped — by the pending drain job or by stop().
  std::lock_guard lock(handlers_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end()) return;
  it->second->registered = false;
  it->second->deliver = nullptr;
}

std::shared_ptr<TcpTransport::Endpoint> TcpTransport::find_endpoint(NodeId node) {
  std::lock_guard lock(handlers_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end() || !it->second->registered) return nullptr;
  return it->second;
}

SimTime TcpTransport::now() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count());
}

const sim::TransportStats& TcpTransport::stats() const {
  // Counters are bumped from writer/reader threads under jobs_mutex_; hand
  // callers a snapshot taken under the same lock so reads are race-free.
  // The ring high-watermark lives in its own atomic (the successful-push
  // path must not take the mutex) and is folded in here.
  std::lock_guard lock(jobs_mutex_);
  snapshot_ = stats_;
  snapshot_.ring_occupancy_highwater = ring_highwater_.load(std::memory_order_relaxed);
  return snapshot_;
}

void TcpTransport::reset_stats() {
  std::lock_guard lock(jobs_mutex_);
  stats_.reset();
  ring_highwater_.store(0, std::memory_order_relaxed);
}

std::size_t TcpTransport::backlog(NodeId node) const {
  std::lock_guard lock(handlers_mutex_);
  const auto it = endpoints_.find(node);
  if (it == endpoints_.end() || !it->second->registered) return 0;
  return it->second->ring.size();
}

void TcpTransport::count_dropped(std::uint64_t n) {
  std::lock_guard lock(jobs_mutex_);
  stats_.messages_dropped += n;
}

bool TcpTransport::enqueue(Clock::time_point at, std::function<void()> run) {
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) return false;
    jobs_.push(Job{at, next_sequence_++, std::move(run)});
  }
  jobs_cv_.notify_all();
  return true;
}

void TcpTransport::schedule(SimDuration delay, std::function<void()> callback) {
  (void)enqueue(Clock::now() + std::chrono::microseconds(delay), std::move(callback));
}

void TcpTransport::deliver_local(NodeId from, NodeId to, Bytes payload) {
  const std::shared_ptr<Endpoint> endpoint = find_endpoint(to);
  if (endpoint == nullptr) {
    count_dropped(1);
    return;
  }
  const DeliveryRing::PushResult pushed =
      endpoint->ring.try_push(Delivery{from, std::move(payload)});
  if (pushed != DeliveryRing::PushResult::kOk) {
    // Ring full (consumer behind) or closed (stop() ran): the message is
    // gone, but never silently — this is the counter the old
    // enqueue-during-stop path forgot to bump.
    std::lock_guard lock(jobs_mutex_);
    ++stats_.messages_dropped;
    if (pushed == DeliveryRing::PushResult::kFull) ++stats_.ring_full_drops;
    return;
  }
  detail_record_highwater(ring_highwater_, endpoint->ring.size());
  // One dispatcher wake per burst: only the push that found the ring idle
  // schedules a drain. During stop the job is refused and the ring remnant
  // is accounted by stop() itself.
  if (!endpoint->drain_pending.exchange(true, std::memory_order_acq_rel)) {
    (void)enqueue(Clock::now(), [this, endpoint] { drain_endpoint(endpoint); });
  }
}

void TcpTransport::drain_endpoint(const std::shared_ptr<Endpoint>& endpoint) {
  // Disarm BEFORE draining: a push landing after this re-arms and
  // schedules the next drain, so nothing published is ever stranded.
  endpoint->drain_pending.store(false, std::memory_order_release);

  std::vector<Delivery> batch;
  endpoint->ring.drain(batch, kMaxDeliveryBatch);
  if (!batch.empty()) {
    BatchDeliverFn handler;
    {
      std::lock_guard lock(handlers_mutex_);
      if (endpoint->registered) handler = endpoint->deliver;
    }
    {
      std::lock_guard lock(jobs_mutex_);
      if (handler) {
        stats_.messages_delivered += batch.size();
      } else {
        stats_.messages_dropped += batch.size();  // unregistered meanwhile
      }
    }
    if (handler) handler(batch);
  }

  // A capped drain can leave entries behind with no producer left to wake
  // us; keep draining until the ring is visibly empty.
  if (!endpoint->ring.empty() &&
      !endpoint->drain_pending.exchange(true, std::memory_order_acq_rel)) {
    (void)enqueue(Clock::now(), [this, endpoint] { drain_endpoint(endpoint); });
  }
}

void TcpTransport::drop_queue(Conn& conn) {
  if (conn.queue.empty()) return;
  count_dropped(conn.queue.size());
  conn.queue.clear();
}

void TcpTransport::enqueue_frame(const std::shared_ptr<Conn>& conn, Bytes frame) {
  std::size_t depth = 0;
  bool dropped = false;
  {
    std::lock_guard lock(conn->mutex);
    if (conn->closed || conn->queue.size() >= kMaxQueueFrames) {
      dropped = true;
    } else {
      conn->queue.push_back(std::move(frame));
      depth = conn->queue.size();
    }
  }
  conn->cv.notify_all();
  std::lock_guard lock(jobs_mutex_);
  if (dropped) {
    ++stats_.messages_dropped;
    ++stats_.send_queue_drops;
  } else if (depth > stats_.send_queue_highwater) {
    stats_.send_queue_highwater = depth;
  }
}

void TcpTransport::send(NodeId from, NodeId to, Bytes payload) {
  {
    std::lock_guard lock(jobs_mutex_);
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
  }

  // Local fast path.
  if (find_endpoint(to) != nullptr) {
    deliver_local(from, to, std::move(payload));
    return;
  }

  if (payload.size() > kMaxFrame - 8) {
    count_dropped(1);
    return;
  }
  Bytes frame = encode_frame(from, to, payload);

  // Pick the channel: the connection the destination last spoke to us on,
  // else the directory endpoint's (created on first use). No socket I/O
  // happens here — the frame is queued and the connection's writer thread
  // does the rest.
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard lock(directory_mutex_);
    if (closed_for_send_) {
      count_dropped(1);
      return;
    }
    if (const auto learned = learned_.find(to); learned != learned_.end()) {
      if (learned->second->closed) {
        learned_.erase(learned);  // channel died; fall back to the directory
      } else {
        conn = learned->second;
      }
    }
    if (!conn) {
      const auto entry = directory_.find(to);
      if (entry == directory_.end()) {
        count_dropped(1);
        return;
      }
      auto [it, inserted] = outbound_.try_emplace(entry->second, nullptr);
      if (inserted) {
        it->second = std::make_shared<Conn>();
        it->second->endpoint = entry->second;
        it->second->writer = std::thread([this, c = it->second] { writer_loop(c); });
      }
      conn = it->second;
    }
  }
  enqueue_frame(conn, std::move(frame));
}

bool TcpTransport::start_reader(const std::shared_ptr<Conn>& conn,
                                const std::shared_ptr<Socket>& sock) {
  std::lock_guard lock(readers_mutex_);
  if (!accepting_) return false;
  sockets_.push_back(sock);
  readers_.emplace_back([this, sock, conn] { reader_loop(sock, conn); });
  return true;
}

void TcpTransport::writer_loop(std::shared_ptr<Conn> conn) {
  int backoff_ms = kMinBackoffMs;
  std::unique_lock lk(conn->mutex);
  while (true) {
    conn->cv.wait(lk, [&] { return conn->closed.load() || !conn->queue.empty(); });
    if (conn->closed) break;

    if (!conn->sock) {
      // Outbound channels (the only kind that can be up without a socket)
      // reconnect here, off every send path, with capped exponential
      // backoff; frames queued against an unreachable peer are dropped —
      // datagram semantics, the protocol timeouts handle it.
      const TcpEndpoint endpoint = *conn->endpoint;
      lk.unlock();
      const int fd = try_connect(endpoint);
      if (fd < 0) {
        {
          std::lock_guard stats_lock(jobs_mutex_);
          ++stats_.connect_failures;
        }
        lk.lock();
        drop_queue(*conn);
        conn->cv.wait_for(lk, std::chrono::milliseconds(backoff_ms),
                          [&] { return conn->closed.load(); });
        backoff_ms = std::min(backoff_ms * 2, kMaxBackoffMs);
        continue;
      }
      auto sock = std::make_shared<Socket>(fd);
      if (!start_reader(conn, sock)) {
        // Stopping: the socket may not gain a reader, so it may not be
        // used (this also closes it, fixing the old cached-fd leak).
        sock->shut();
        lk.lock();
        drop_queue(*conn);
        continue;
      }
      lk.lock();
      if (conn->closed) {
        sock->shut();  // reader notices and cleans up
        break;
      }
      backoff_ms = kMinBackoffMs;
      if (conn->ever_connected) {
        std::lock_guard stats_lock(jobs_mutex_);
        ++stats_.reconnects;
      }
      conn->ever_connected = true;
      conn->sock = sock;
    }

    Bytes frame = std::move(conn->queue.front());
    conn->queue.pop_front();
    const std::shared_ptr<Socket> sock = conn->sock;
    lk.unlock();
    const bool ok = write_all(sock->fd, frame.data(), frame.size());
    lk.lock();
    if (!ok) {
      count_dropped(1);
      if (conn->sock == sock) {
        sock->shut();  // reader notices, resets conn->sock and cleans up
      }
    }
  }
  drop_queue(*conn);
}

void TcpTransport::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed: shutting down
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto sock = std::make_shared<Socket>(fd);
    auto conn = std::make_shared<Conn>();
    conn->sock = sock;
    conn->ever_connected = true;

    std::lock_guard lock(readers_mutex_);
    if (!accepting_) {
      // Nothing references the socket or connection; closing the fd via
      // ~Socket is the whole cleanup.
      return;
    }
    inbound_conns_.push_back(conn);
    sockets_.push_back(sock);
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
    readers_.emplace_back([this, sock, conn] { reader_loop(sock, conn); });
  }
}

void TcpTransport::reader_loop(std::shared_ptr<Socket> sock, std::shared_ptr<Conn> conn) {
  const int fd = sock->fd;
  while (true) {
    std::uint8_t header[kHeaderSize];
    if (!read_all(fd, header, sizeof(header))) break;
    // Versioned framing: a bad magic/version is a protocol error and tears
    // the connection down rather than desynchronizing the stream.
    if (header[0] != kFrameMagic || header[1] < kMinFrameVersion ||
        header[1] > kFrameVersion) {
      break;
    }
    const std::uint32_t frame_length = load_be32(header + 4);
    if (frame_length < 8 || frame_length > kMaxFrame) break;
    const NodeId from{load_be32(header + 8)};
    const NodeId to{load_be32(header + 12)};
    Bytes payload(frame_length - 8);
    if (!payload.empty() && !read_all(fd, payload.data(), payload.size())) break;
    {
      std::lock_guard stats_lock(jobs_mutex_);
      stats_.bytes_received += payload.size();
    }
    {
      // Remember how to reach the sender: over this very channel.
      std::lock_guard lock(directory_mutex_);
      learned_[from] = conn;
    }
    deliver_local(from, to, std::move(payload));
  }

  // The socket is dead. Outbound channels drop it and let the writer
  // reconnect on the next frame; inbound channels are done for good.
  bool channel_gone = false;
  {
    std::lock_guard lock(conn->mutex);
    if (conn->sock == sock) conn->sock.reset();
    if (!conn->endpoint) {
      conn->closed = true;
      channel_gone = true;
    }
  }
  conn->cv.notify_all();
  if (channel_gone) {
    std::lock_guard lock(directory_mutex_);
    for (auto it = learned_.begin(); it != learned_.end();) {
      it = it->second == conn ? learned_.erase(it) : std::next(it);
    }
  }
  {
    std::lock_guard lock(readers_mutex_);
    std::erase_if(sockets_, [&](const std::weak_ptr<Socket>& weak) {
      const auto strong = weak.lock();
      return !strong || strong == sock;
    });
  }
  // Dropping our reference closes the fd once the writer is done with it.
}

void TcpTransport::dispatch_loop() {
  std::unique_lock lock(jobs_mutex_);
  while (true) {
    if (stopping_) return;
    if (jobs_.empty()) {
      jobs_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      continue;
    }
    const Clock::time_point due = jobs_.top().at;
    if (Clock::now() < due) {
      jobs_cv_.wait_until(lock, due, [this, due] {
        return stopping_ || (!jobs_.empty() && jobs_.top().at < due);
      });
      continue;
    }
    Job job = std::move(const_cast<Job&>(jobs_.top()));
    jobs_.pop();
    lock.unlock();
    job.run();
    lock.lock();
  }
}

}  // namespace securestore::net
