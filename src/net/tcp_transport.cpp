#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace securestore::net {

namespace {

/// Reads exactly n bytes; false on EOF/error.
bool read_all(int fd, void* buffer, std::size_t n) {
  auto* out = static_cast<std::uint8_t*>(buffer);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const void* buffer, std::size_t n) {
  const auto* in = static_cast<const std::uint8_t*>(buffer);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, in + sent, n - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

constexpr std::uint32_t kMaxFrame = 64 * 1024 * 1024;

}  // namespace

TcpTransport::TcpTransport(std::uint16_t listen_port, std::map<NodeId, TcpEndpoint> directory)
    : directory_(std::move(directory)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bind() failed");
  }
  socklen_t length = sizeof(address);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: listen() failed");
  }

  dispatcher_ = std::thread([this] { dispatch_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::stop() {
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  jobs_cv_.notify_all();
  // Shut the listener down; accept() returns and the acceptor exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  {
    // Shut outbound connections down; their reader threads close them.
    std::lock_guard lock(directory_mutex_);
    for (auto& [endpoint, fd] : outbound_) ::shutdown(fd, SHUT_RDWR);
    outbound_.clear();
  }
  if (acceptor_.joinable()) acceptor_.join();

  // Unblock readers stuck in recv() on inbound connections, then join them
  // OUTSIDE the lock (an exiting reader takes the lock to deregister).
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(readers_mutex_);
    accepting_ = false;
    for (const int fd : inbound_fds_) ::shutdown(fd, SHUT_RDWR);
    to_join = std::move(readers_);
    readers_.clear();
  }
  for (std::thread& reader : to_join) {
    if (reader.joinable()) reader.join();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

void TcpTransport::set_endpoint(NodeId node, TcpEndpoint endpoint) {
  std::lock_guard lock(directory_mutex_);
  directory_[node] = std::move(endpoint);
}

void TcpTransport::register_node(NodeId node, DeliverFn deliver) {
  std::lock_guard lock(handlers_mutex_);
  handlers_[node] = std::move(deliver);
}

void TcpTransport::unregister_node(NodeId node) {
  std::lock_guard lock(handlers_mutex_);
  handlers_.erase(node);
}

SimTime TcpTransport::now() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count());
}

void TcpTransport::enqueue(Clock::time_point at, std::function<void()> run) {
  {
    std::lock_guard lock(jobs_mutex_);
    if (stopping_) return;
    jobs_.push(Job{at, next_sequence_++, std::move(run)});
  }
  jobs_cv_.notify_all();
}

void TcpTransport::schedule(SimDuration delay, std::function<void()> callback) {
  enqueue(Clock::now() + std::chrono::microseconds(delay), std::move(callback));
}

void TcpTransport::deliver_local(NodeId from, NodeId to, Bytes payload) {
  enqueue(Clock::now(), [this, from, to, payload = std::move(payload)] {
    DeliverFn handler;
    {
      std::lock_guard lock(handlers_mutex_);
      const auto it = handlers_.find(to);
      if (it == handlers_.end()) {
        std::lock_guard stats_lock(jobs_mutex_);
        ++stats_.messages_dropped;
        return;
      }
      handler = it->second;
    }
    {
      std::lock_guard stats_lock(jobs_mutex_);
      ++stats_.messages_delivered;
    }
    handler(from, payload);
  });
}

int TcpTransport::outbound_fd(const TcpEndpoint& endpoint) {
  // Caller holds directory_mutex_.
  const auto it = outbound_.find(endpoint);
  if (it != outbound_.end()) return it->second;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &address.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  outbound_[endpoint] = fd;

  // TCP is bidirectional: replies (and anything else the peer routes back
  // over this connection) arrive here, so it needs a reader too. Readers
  // own closing the fd; the send path only ever shuts a broken one down.
  {
    std::lock_guard lock(readers_mutex_);
    if (accepting_) {
      inbound_fds_.push_back(fd);
      readers_.emplace_back([this, fd] { reader_loop(fd); });
    }
  }
  return fd;
}

void TcpTransport::send(NodeId from, NodeId to, Bytes payload) {
  {
    std::lock_guard lock(jobs_mutex_);
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
  }

  // Local fast path.
  {
    std::lock_guard lock(handlers_mutex_);
    if (handlers_.contains(to)) {
      deliver_local(from, to, std::move(payload));
      return;
    }
  }

  std::uint8_t header[12];
  const auto frame_length = static_cast<std::uint32_t>(8 + payload.size());
  std::memcpy(header, &frame_length, 4);
  std::memcpy(header + 4, &from.value, 4);
  std::memcpy(header + 8, &to.value, 4);

  std::lock_guard lock(directory_mutex_);

  // Prefer the connection the destination last spoke to us on.
  if (const auto learned = learned_.find(to); learned != learned_.end()) {
    if (write_all(learned->second, header, sizeof(header)) &&
        write_all(learned->second, payload.data(), payload.size())) {
      return;
    }
    learned_.erase(learned);  // connection died; fall back to the directory
  }

  const auto entry = directory_.find(to);
  if (entry == directory_.end()) {
    std::lock_guard stats_lock(jobs_mutex_);
    ++stats_.messages_dropped;
    return;
  }

  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = outbound_fd(entry->second);
    if (fd < 0) break;
    if (write_all(fd, header, sizeof(header)) &&
        write_all(fd, payload.data(), payload.size())) {
      return;
    }
    // Broken connection: shut it down (its reader closes it) and retry
    // once with a fresh one.
    ::shutdown(fd, SHUT_RDWR);
    outbound_.erase(entry->second);
  }
  std::lock_guard stats_lock(jobs_mutex_);
  ++stats_.messages_dropped;
}

void TcpTransport::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed: shutting down
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(readers_mutex_);
    if (!accepting_) {
      ::close(fd);
      return;
    }
    inbound_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void TcpTransport::reader_loop(int fd) {
  while (true) {
    std::uint32_t frame_length = 0;
    if (!read_all(fd, &frame_length, 4)) break;
    if (frame_length < 8 || frame_length > kMaxFrame) break;  // protocol error
    std::uint32_t from = 0, to = 0;
    if (!read_all(fd, &from, 4) || !read_all(fd, &to, 4)) break;
    Bytes payload(frame_length - 8);
    if (!payload.empty() && !read_all(fd, payload.data(), payload.size())) break;
    {
      // Remember how to reach the sender: over this very connection.
      std::lock_guard lock(directory_mutex_);
      learned_[NodeId{from}] = fd;
    }
    deliver_local(NodeId{from}, NodeId{to}, std::move(payload));
  }
  {
    // Purge every route that pointed at this connection before the fd
    // number can be reused.
    std::lock_guard lock(directory_mutex_);
    for (auto it = learned_.begin(); it != learned_.end();) {
      it = it->second == fd ? learned_.erase(it) : std::next(it);
    }
    for (auto it = outbound_.begin(); it != outbound_.end();) {
      it = it->second == fd ? outbound_.erase(it) : std::next(it);
    }
  }
  {
    std::lock_guard lock(readers_mutex_);
    std::erase(inbound_fds_, fd);
  }
  ::close(fd);
}

void TcpTransport::dispatch_loop() {
  std::unique_lock lock(jobs_mutex_);
  while (true) {
    if (stopping_) return;
    if (jobs_.empty()) {
      jobs_cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      continue;
    }
    const Clock::time_point due = jobs_.top().at;
    if (Clock::now() < due) {
      jobs_cv_.wait_until(lock, due, [this, due] {
        return stopping_ || (!jobs_.empty() && jobs_.top().at < due);
      });
      continue;
    }
    Job job = std::move(const_cast<Job&>(jobs_.top()));
    jobs_.pop();
    lock.unlock();
    job.run();
    lock.lock();
  }
}

}  // namespace securestore::net
