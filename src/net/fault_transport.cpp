#include "net/fault_transport.h"

#include <algorithm>

namespace securestore::net {

namespace {

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kPartitionDrop:
      return "partition_drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kTruncate:
      return "truncate";
  }
  return "unknown";
}

FaultInjectingTransport::FaultInjectingTransport(Transport& inner, std::uint64_t seed)
    : inner_(inner),
      rng_(seed),
      drops_(inner.registry().counter("chaos.drop")),
      partition_drops_(inner.registry().counter("chaos.partition_drop")),
      delays_(inner.registry().counter("chaos.delay")),
      duplicates_(inner.registry().counter("chaos.duplicate")),
      reorders_(inner.registry().counter("chaos.reorder")),
      corruptions_(inner.registry().counter("chaos.corrupt")),
      truncations_(inner.registry().counter("chaos.truncate")) {}

void FaultInjectingTransport::register_node(NodeId node, DeliverFn deliver) {
  inner_.register_node(node, std::move(deliver));
}

void FaultInjectingTransport::register_node_batched(NodeId node, BatchDeliverFn deliver) {
  // Pure delegate: faults act on the send path, so the inner transport's
  // native batching (and its determinism) is preserved under chaos.
  inner_.register_node_batched(node, std::move(deliver));
}

void FaultInjectingTransport::unregister_node(NodeId node) { inner_.unregister_node(node); }

void FaultInjectingTransport::schedule(SimDuration delay, std::function<void()> callback) {
  inner_.schedule(delay, std::move(callback));
}

void FaultInjectingTransport::set_default_rule(const FaultRule& rule) {
  std::lock_guard lock(mutex_);
  default_rule_ = rule;
}

void FaultInjectingTransport::set_link_rule(NodeId from, NodeId to, const FaultRule& rule) {
  std::lock_guard lock(mutex_);
  link_rules_[link_key(from, to)] = rule;
}

void FaultInjectingTransport::clear_link_rule(NodeId from, NodeId to) {
  std::lock_guard lock(mutex_);
  link_rules_.erase(link_key(from, to));
}

void FaultInjectingTransport::clear_link_rules() {
  std::lock_guard lock(mutex_);
  link_rules_.clear();
}

void FaultInjectingTransport::partition_link(NodeId from, NodeId to) {
  std::lock_guard lock(mutex_);
  partitioned_links_.insert(link_key(from, to));
}

void FaultInjectingTransport::heal_link(NodeId from, NodeId to) {
  std::lock_guard lock(mutex_);
  partitioned_links_.erase(link_key(from, to));
}

void FaultInjectingTransport::partition_groups(const std::vector<NodeId>& a,
                                               const std::vector<NodeId>& b) {
  std::lock_guard lock(mutex_);
  for (const NodeId left : a) {
    for (const NodeId right : b) {
      partitioned_links_.insert(link_key(left, right));
      partitioned_links_.insert(link_key(right, left));
    }
  }
}

void FaultInjectingTransport::heal_all_partitions() {
  std::lock_guard lock(mutex_);
  partitioned_links_.clear();
}

bool FaultInjectingTransport::link_partitioned(NodeId from, NodeId to) const {
  std::lock_guard lock(mutex_);
  return partitioned_links_.contains(link_key(from, to));
}

std::uint64_t FaultInjectingTransport::injected_count() const {
  std::lock_guard lock(mutex_);
  return injected_;
}

std::vector<FaultEvent> FaultInjectingTransport::injected() const {
  std::lock_guard lock(mutex_);
  return timeline_;
}

const FaultRule& FaultInjectingTransport::rule_for_locked(NodeId from, NodeId to) const {
  const auto it = link_rules_.find(link_key(from, to));
  return it != link_rules_.end() ? it->second : default_rule_;
}

void FaultInjectingTransport::note_locked(FaultKind kind, NodeId from, NodeId to) {
  if (timeline_.size() < kTimelineCap) {
    timeline_.push_back(FaultEvent{injected_, kind, from, to});
  }
  ++injected_;
  // Overlay the fault on the trace timeline as an instant event stamped at
  // injection time, so an exported trace shows exactly which faults landed
  // under which spans. No-op while tracing is off.
  {
    std::string name = "fault.";
    name += fault_kind_name(kind);
    inner_.events().instant(from.value, to.value, obs::TraceContext{}, name, "chaos",
                            static_cast<std::uint64_t>(inner_.now()));
  }
  switch (kind) {
    case FaultKind::kDrop:
      drops_.inc();
      break;
    case FaultKind::kPartitionDrop:
      partition_drops_.inc();
      break;
    case FaultKind::kDelay:
      delays_.inc();
      break;
    case FaultKind::kDuplicate:
      duplicates_.inc();
      break;
    case FaultKind::kReorder:
      reorders_.inc();
      break;
    case FaultKind::kCorrupt:
      corruptions_.inc();
      break;
    case FaultKind::kTruncate:
      truncations_.inc();
      break;
  }
}

void FaultInjectingTransport::send(NodeId from, NodeId to, Bytes payload) {
  SimDuration extra = 0;
  bool duplicate = false;
  SimDuration duplicate_gap = 0;
  {
    std::lock_guard lock(mutex_);
    if (partitioned_links_.contains(link_key(from, to))) {
      note_locked(FaultKind::kPartitionDrop, from, to);
      return;
    }
    const FaultRule& rule = rule_for_locked(from, to);
    if (rule.drop > 0 && rng_.next_bool(rule.drop)) {
      note_locked(FaultKind::kDrop, from, to);
      return;
    }
    if (rule.truncate > 0 && payload.size() > 1 && rng_.next_bool(rule.truncate)) {
      payload.resize(1 + rng_.next_below(payload.size() - 1));
      note_locked(FaultKind::kTruncate, from, to);
    }
    if (rule.corrupt > 0 && !payload.empty() && rng_.next_bool(rule.corrupt)) {
      const std::size_t flips = 1 + rng_.next_below(3);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t at = rng_.next_below(payload.size());
        payload[at] = static_cast<std::uint8_t>(payload[at] ^ (1 + rng_.next_below(255)));
      }
      note_locked(FaultKind::kCorrupt, from, to);
    }
    if (rule.delay_base > 0 || rule.delay_jitter > 0) {
      extra = rule.delay_base;
      if (rule.delay_jitter > 0) extra += rng_.next_below(rule.delay_jitter + 1);
      if (extra > 0) note_locked(FaultKind::kDelay, from, to);
    }
    if (rule.reorder > 0 && rng_.next_bool(rule.reorder)) {
      // Holding this message back lets messages sent after it overtake —
      // reordering without the transport having to touch its peers' queues.
      extra += rule.reorder_hold;
      note_locked(FaultKind::kReorder, from, to);
    }
    if (rule.duplicate > 0 && rng_.next_bool(rule.duplicate)) {
      duplicate = true;
      duplicate_gap = rule.duplicate_gap;
      note_locked(FaultKind::kDuplicate, from, to);
    }
  }

  if (duplicate) {
    Bytes copy = payload;
    inner_.schedule(extra + duplicate_gap, [this, from, to, copy = std::move(copy)]() mutable {
      inner_.send(from, to, std::move(copy));
    });
  }
  if (extra > 0) {
    inner_.schedule(extra, [this, from, to, payload = std::move(payload)]() mutable {
      inner_.send(from, to, std::move(payload));
    });
    return;
  }
  inner_.send(from, to, std::move(payload));
}

}  // namespace securestore::net
