// Transport abstraction.
//
// Protocol code (clients, servers, gossip, baselines) is written against
// this interface; the concrete `SimTransport` routes datagrams through the
// discrete-event simulator. Delivery is asynchronous and unreliable —
// messages to partitioned or losing links silently vanish, exactly like
// UDP — so every protocol carries its own timeouts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/ring.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "sim/metrics.h"
#include "util/bytes.h"
#include "util/ids.h"
#include "util/time.h"

namespace securestore::net {

class Transport {
 public:
  /// Invoked on the receiving node with the sender's id and the payload.
  /// NOTE: the sender id is transport-provided (i.e. authenticated at the
  /// channel level, per the paper's §4 secure-channel assumption); payload
  /// authenticity is still the protocol's job via signatures.
  using DeliverFn = std::function<void(NodeId from, BytesView payload)>;

  /// Batched receive handler: every message the transport had pending for
  /// the node at wakeup time, in arrival order, up to kMaxDeliveryBatch per
  /// call. Receivers that can amortize per-message work across a batch
  /// (signature verification above all) register this instead of DeliverFn.
  using BatchDeliverFn = std::function<void(std::vector<Delivery>& batch)>;

  /// Ceiling on how many pending messages a transport hands a batch
  /// handler per wakeup — bounds both handler latency and the size of the
  /// downstream signature-verification batch.
  static constexpr std::size_t kMaxDeliveryBatch = 32;

  virtual ~Transport() = default;

  /// Registers a node's receive handler. A node must be registered before
  /// messages can be delivered to it; re-registering replaces the handler.
  virtual void register_node(NodeId node, DeliverFn deliver) = 0;

  /// Batched registration. Transports with native batching (sim, thread,
  /// TCP) coalesce every message pending at a dispatch wakeup into one
  /// handler call; the default implementation adapts per-message delivery
  /// by wrapping each message in a batch of one, so minimal Transport
  /// implementations (test doubles) work unchanged.
  virtual void register_node_batched(NodeId node, BatchDeliverFn deliver);

  /// Removes a node; pending messages to it are dropped on delivery.
  virtual void unregister_node(NodeId node) = 0;

  /// Sends a datagram. Never fails synchronously; loss is silent.
  virtual void send(NodeId from, NodeId to, Bytes payload) = 0;

  /// Current (simulated) time.
  virtual SimTime now() const = 0;

  /// Schedules a callback after `delay` (protocol timeouts, gossip ticks).
  virtual void schedule(SimDuration delay, std::function<void()> callback) = 0;

  /// Instantaneous inbound backlog for `node`: messages the transport has
  /// accepted for it but not yet delivered (delivery-ring occupancy on the
  /// thread/TCP transports, modeled service queue under the simulator).
  /// The admission controller's network-pressure signal (DESIGN.md §13).
  /// Default 0 so minimal Transport implementations feel no pressure.
  virtual std::size_t backlog(NodeId node) const {
    (void)node;
    return 0;
  }

  /// Hands one service slot back to `node`'s capacity model. The admission
  /// gate refuses before any decode/crypto/WAL cost is paid (DESIGN.md
  /// §13), so under a per-message service-cost model a refusal must not
  /// consume the CPU budget an admitted request would — shedding is O(1)
  /// by construction. No-op on transports without a capacity model.
  virtual void refund_service(NodeId node) { (void)node; }

  /// Transport counters since the last reset: message counts for every
  /// transport, plus connection-level counters (reconnects, connect
  /// failures, send-queue drops/high-water) for connection-oriented ones.
  /// The returned reference stays valid until the next stats() call on the
  /// same transport; copy it before calling again if you need a snapshot.
  virtual const sim::TransportStats& stats() const = 0;
  virtual void reset_stats() = 0;

  /// The metrics registry every component on this transport reports
  /// through (DESIGN.md §8): clients, servers, gossip and the rpc layer
  /// all resolve their metric handles here, and the concrete transports
  /// fold their own TransportStats in as `transport.*` gauges via a
  /// snapshot-time collector. The default implementation hands out one
  /// process-wide registry so minimal Transport implementations (test
  /// doubles) keep working; the real transports each own (or share, when
  /// injected) a registry scoped to the deployment.
  virtual obs::Registry& registry();

  /// The structured event log spans and instant events are recorded into
  /// (DESIGN.md §8): same scoping story as `registry()` — the concrete
  /// transports each own (or share, when injected) one per deployment, and
  /// the default implementation hands out a process-wide fallback so
  /// minimal Transport implementations keep working. Disabled by default;
  /// tracing harnesses flip it on.
  virtual obs::EventLog& events();
};

/// Publishes a TransportStats snapshot into `registry` as `transport.*`
/// gauges — the collector body every concrete transport registers.
void fold_transport_stats(obs::Registry& registry, const sim::TransportStats& stats);

/// Relaxed CAS-max into an atomic high-watermark. Shared by the thread and
/// TCP transports' ring-occupancy tracking, which runs on the successful
/// push path and therefore cannot take the stats mutex.
inline void detail_record_highwater(std::atomic<std::uint64_t>& highwater,
                                    std::uint64_t value) {
  std::uint64_t current = highwater.load(std::memory_order_relaxed);
  while (value > current &&
         !highwater.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace securestore::net
