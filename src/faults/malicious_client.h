// Malicious client behaviors (§5.3).
//
// A malicious client owns a legitimate key (it is authorized) but misuses
// the protocol. The two attacks the paper analyzes:
//
//  * Spurious context: "a malicious client C1 could include spurious
//    entries in a context as part of a write. These entries could be
//    arbitrarily high and any client C2 which reads this write would update
//    its local context with such high timestamps... Soon the whole set of
//    clients would see this easy denial of service attack." The causal-hold
//    defense means servers never report such a write.
//
//  * Timestamp reuse (equivocation): "To prevent a malicious client from
//    using one timestamp for two different values it writes, we also
//    include the digest of the value written in the timestamp." Servers
//    detect the pair and flag the writer.
//
// The attacker here speaks the raw wire protocol, bypassing the honest
// client library entirely.
#pragma once

#include "core/config.h"
#include "core/messages.h"
#include "crypto/keys.h"
#include "net/rpc.h"

namespace securestore::faults {

class MaliciousClient {
 public:
  MaliciousClient(net::Transport& transport, NodeId network_id, ClientId client_id,
                  crypto::KeyPair keys, core::StoreConfig config, core::GroupPolicy policy);

  /// Crafts a correctly-signed CC write whose context claims dependencies
  /// with arbitrarily high timestamps on `poisoned_item` (the §5.3 DoS).
  /// Sends it to `fanout` servers. Returns the record for assertions.
  core::WriteRecord send_spurious_context_write(ItemId item, BytesView value,
                                                ItemId poisoned_item,
                                                std::uint64_t spurious_time,
                                                std::size_t fanout);

  /// Crafts two correctly-signed writes that reuse one (time, uid) for two
  /// different values — detectable equivocation. Sends both to `fanout`
  /// servers. Returns the pair.
  std::pair<core::WriteRecord, core::WriteRecord> send_equivocating_writes(
      ItemId item, BytesView value_a, BytesView value_b, std::uint64_t time,
      std::size_t fanout);

  /// A syntactically valid write whose signature is someone else's uid —
  /// forgery that every honest server must reject.
  core::WriteRecord send_forged_writer_write(ItemId item, BytesView value,
                                             ClientId victim, std::size_t fanout);

 private:
  core::WriteRecord base_record(ItemId item, BytesView value) const;
  void blast(const core::WriteRecord& record, std::size_t fanout);

  net::RpcNode node_;
  ClientId client_id_;
  crypto::KeyPair keys_;
  core::StoreConfig config_;
  core::GroupPolicy policy_;
};

}  // namespace securestore::faults
