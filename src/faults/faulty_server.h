// Byzantine server behaviors (§4: "faulty servers can behave arbitrarily
// while executing the secure store protocols").
//
// Each behavior models one of the attacks the paper's correctness
// discussion enumerates (§5.1/§5.2): a compromised server "can either not
// respond to a request, or respond with old data or data that is
// corrupted". Behaviors compose (a server can be both stale and corrupt);
// `kCrash` subsumes the rest.
//
// Used by the availability/robustness tests and by benches E7/E8.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "core/server.h"

namespace securestore::faults {

enum class ServerFault : std::uint8_t {
  /// Ignores every request and stops gossiping (a crashed or unplugged
  /// machine).
  kCrash,
  /// Stores writes but never answers client data requests (silent
  /// denial of service; gossip continues so peers stay unharmed).
  kMuteData,
  /// Answers context reads with the oldest context it ever served —
  /// the replay attack the signed-context design tolerates.
  kStaleContext,
  /// Answers meta/read/log requests with the oldest record it ever served
  /// for the item — "respond with old data".
  kStaleData,
  /// Flips bytes in the values (and records) it returns — "data that is
  /// corrupted"; signatures make this detectable.
  kCorruptValues,
  /// Acknowledges writes with ok=true but throws them away (lying about
  /// durability).
  kDropWrites,
};

class FaultyServer final : public core::SecureStoreServer {
 public:
  FaultyServer(net::Transport& transport, NodeId id, core::StoreConfig config,
               crypto::KeyPair keys, Options options, Rng rng,
               std::set<ServerFault> faults);

  const std::set<ServerFault>& faults() const { return faults_; }
  bool has(ServerFault fault) const { return faults_.contains(fault); }

 protected:
  bool accept_request(NodeId from, net::MsgType type) override;
  std::optional<std::optional<std::pair<net::MsgType, Bytes>>> preempt_request(
      NodeId from, net::MsgType type, BytesView body) override;
  std::optional<std::pair<net::MsgType, Bytes>> filter_response(
      NodeId from, net::MsgType request_type, BytesView request_body,
      std::optional<std::pair<net::MsgType, Bytes>> honest) override;

 private:
  Bytes corrupted(net::MsgType type, Bytes honest_body) const;

  std::set<ServerFault> faults_;
  // First-served responses, replayed forever under the stale behaviors.
  std::optional<Bytes> stale_context_reply_;
  std::map<std::pair<std::uint16_t, std::uint64_t>, Bytes> stale_data_replies_;
};

}  // namespace securestore::faults
