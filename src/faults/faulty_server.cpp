#include "faults/faulty_server.h"

#include "util/serial.h"

namespace securestore::faults {

FaultyServer::FaultyServer(net::Transport& transport, NodeId id, core::StoreConfig config,
                           crypto::KeyPair keys, Options options, Rng rng,
                           std::set<ServerFault> faults)
    : SecureStoreServer(transport, id, std::move(config), std::move(keys),
                        std::move(options), std::move(rng)),
      faults_(std::move(faults)) {
  if (has(ServerFault::kCrash)) gossip().stop();
}

bool FaultyServer::accept_request(NodeId /*from*/, net::MsgType type) {
  if (has(ServerFault::kCrash)) return false;
  // A durability-lying server refuses incoming data however it arrives:
  // acknowledging client writes it discards while honestly applying gossip
  // would repair the very state it is suppressing.
  if (has(ServerFault::kDropWrites) && type == net::MsgType::kGossipUpdates) return false;
  if (has(ServerFault::kMuteData)) {
    switch (type) {
      case net::MsgType::kMetaRequest:
      case net::MsgType::kRead:
      case net::MsgType::kLogRead:
      case net::MsgType::kReconstruct:
        return false;
      default:
        break;
    }
  }
  return true;
}

std::optional<std::optional<std::pair<net::MsgType, Bytes>>> FaultyServer::preempt_request(
    NodeId /*from*/, net::MsgType type, BytesView /*body*/) {
  if (has(ServerFault::kDropWrites) &&
      (type == net::MsgType::kWrite || type == net::MsgType::kContextWrite)) {
    // Lie about durability: acknowledge without storing. The client counts
    // this ack toward its quorum while one fewer correct server holds the
    // data — tolerated as long as at most b servers do this.
    if (type == net::MsgType::kWrite) {
      core::WriteResp resp;
      resp.ok = true;
      return std::optional(std::make_pair(net::MsgType::kWrite, resp.serialize()));
    }
    core::AckResp resp;
    resp.ok = true;
    return std::optional(std::make_pair(net::MsgType::kAck, resp.serialize()));
  }
  return std::nullopt;
}

std::optional<std::pair<net::MsgType, Bytes>> FaultyServer::filter_response(
    NodeId /*from*/, net::MsgType request_type, BytesView request_body,
    std::optional<std::pair<net::MsgType, Bytes>> honest) {
  if (!honest.has_value()) return honest;

  if (has(ServerFault::kStaleContext) && request_type == net::MsgType::kContextRead) {
    if (!stale_context_reply_.has_value()) {
      stale_context_reply_ = honest->second;  // freeze the first reply
    }
    return std::make_pair(honest->first, *stale_context_reply_);
  }

  if (has(ServerFault::kStaleData)) {
    const bool data_request = request_type == net::MsgType::kMetaRequest ||
                              request_type == net::MsgType::kRead ||
                              request_type == net::MsgType::kLogRead;
    if (data_request) {
      try {
        Reader r(request_body);
        const std::uint64_t item = r.u64();  // leading field of all three
        const auto key = std::make_pair(static_cast<std::uint16_t>(request_type), item);
        const auto it = stale_data_replies_.find(key);
        if (it == stale_data_replies_.end()) {
          stale_data_replies_[key] = honest->second;
        } else {
          return std::make_pair(honest->first, it->second);
        }
      } catch (const DecodeError&) {
      }
    }
  }

  if (has(ServerFault::kCorruptValues)) {
    const bool data_response = request_type == net::MsgType::kMetaRequest ||
                               request_type == net::MsgType::kRead ||
                               request_type == net::MsgType::kLogRead ||
                               request_type == net::MsgType::kContextRead ||
                               request_type == net::MsgType::kReconstruct;
    if (data_response) {
      return std::make_pair(honest->first, corrupted(request_type, honest->second));
    }
  }

  return honest;
}

Bytes FaultyServer::corrupted(net::MsgType /*type*/, Bytes honest_body) const {
  // Flip bits in the back half of the message, where values/signatures
  // live; headers stay parseable so the client exercises its verification
  // path rather than its decode path.
  if (honest_body.size() > 8) {
    for (std::size_t i = honest_body.size() / 2; i < honest_body.size(); i += 7) {
      honest_body[i] ^= 0x5a;
    }
  }
  return honest_body;
}

}  // namespace securestore::faults
