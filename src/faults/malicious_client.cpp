#include "faults/malicious_client.h"

namespace securestore::faults {

MaliciousClient::MaliciousClient(net::Transport& transport, NodeId network_id,
                                 ClientId client_id, crypto::KeyPair keys,
                                 core::StoreConfig config, core::GroupPolicy policy)
    : node_(transport, network_id),
      client_id_(client_id),
      keys_(std::move(keys)),
      config_(std::move(config)),
      policy_(policy) {}

core::WriteRecord MaliciousClient::base_record(ItemId item, BytesView value) const {
  core::WriteRecord record;
  record.item = item;
  record.group = policy_.group;
  record.model = policy_.model;
  record.writer = client_id_;
  record.value = Bytes(value.begin(), value.end());
  return record;
}

void MaliciousClient::blast(const core::WriteRecord& record, std::size_t fanout) {
  core::WriteReq req;
  req.record = record;
  const Bytes body = req.serialize();
  for (std::size_t i = 0; i < fanout && i < config_.servers.size(); ++i) {
    // Fire-and-forget via a request we never wait on.
    node_.send_request(config_.servers[i], net::MsgType::kWrite, body,
                       [](NodeId, net::MsgType, BytesView) {});
  }
}

core::WriteRecord MaliciousClient::send_spurious_context_write(
    ItemId item, BytesView value, ItemId poisoned_item, std::uint64_t spurious_time,
    std::size_t fanout) {
  core::WriteRecord record = base_record(item, value);
  record.value_digest = crypto::meter_digest(record.value);
  record.ts = core::Timestamp{1, client_id_, record.value_digest};

  core::Context poisoned(policy_.group);
  poisoned.set(item, record.ts);
  // The attack: a dependency on a write that does not exist anywhere.
  poisoned.set(poisoned_item, core::Timestamp{spurious_time, client_id_,
                                              crypto::meter_digest(to_bytes("phantom"))});
  record.writer_context = std::move(poisoned);

  record.sign(keys_.seed);
  blast(record, fanout);
  return record;
}

std::pair<core::WriteRecord, core::WriteRecord> MaliciousClient::send_equivocating_writes(
    ItemId item, BytesView value_a, BytesView value_b, std::uint64_t time,
    std::size_t fanout) {
  core::WriteRecord first = base_record(item, value_a);
  first.value_digest = crypto::meter_digest(first.value);
  first.ts = core::Timestamp{time, client_id_, first.value_digest};
  first.writer_context = core::Context(policy_.group);
  first.sign(keys_.seed);

  core::WriteRecord second = base_record(item, value_b);
  second.value_digest = crypto::meter_digest(second.value);
  second.ts = core::Timestamp{time, client_id_, second.value_digest};  // same time!
  second.writer_context = core::Context(policy_.group);
  second.sign(keys_.seed);

  blast(first, fanout);
  blast(second, fanout);
  return {first, second};
}

core::WriteRecord MaliciousClient::send_forged_writer_write(ItemId item, BytesView value,
                                                            ClientId victim,
                                                            std::size_t fanout) {
  core::WriteRecord record = base_record(item, value);
  record.writer = victim;  // claim someone else's identity
  record.value_digest = crypto::meter_digest(record.value);
  record.ts = core::Timestamp{1, victim, record.value_digest};
  record.writer_context = core::Context(policy_.group);
  // Signed with OUR key: the uid/key mismatch is what servers must catch.
  record.signature = crypto::meter_sign(keys_.seed, record.signed_payload());
  blast(record, fanout);
  return record;
}

}  // namespace securestore::faults
